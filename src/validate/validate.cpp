#include "validate/validate.h"

#include <algorithm>
#include <climits>
#include <map>
#include <sstream>

namespace ps::validate {

const char* verdictName(Verdict v) {
  switch (v) {
    case Verdict::RefutedDeletion: return "refuted-deletion";
    case Verdict::ConfirmedSafe: return "confirmed-safe";
    case Verdict::WitnessFound: return "witness-found";
    case Verdict::NoWitness: return "no-witness";
    case Verdict::Unvalidated: return "unvalidated";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// TraceIndex
// ---------------------------------------------------------------------------

TraceIndex::TraceIndex(const interp::Trace& trace) : trace_(&trace) {
  for (std::uint32_t i = 0;
       i < static_cast<std::uint32_t>(trace.events.size()); ++i) {
    byStmt_[trace.events[i].stmt].push_back(i);
  }
}

namespace {

/// Per-element running state for the carried-edge sweep: the smallest
/// carrier iteration any src-role access has occurred in so far.
struct CarriedSeen {
  long long minIter = LLONG_MAX;
  std::uint32_t evIdx = 0;
};

}  // namespace

bool TraceIndex::findWitness(const EdgeQuery& q,
                             std::string* evidence) const {
  if (!q.supported) return false;
  bool srcWrite = false, dstWrite = false;
  switch (q.type) {
    case dep::DepType::True: srcWrite = true; dstWrite = false; break;
    case dep::DepType::Anti: srcWrite = false; dstWrite = true; break;
    case dep::DepType::Output: srcWrite = true; dstWrite = true; break;
    case dep::DepType::Input: srcWrite = false; dstWrite = false; break;
    case dep::DepType::Control: return false;
  }
  const auto itS = byStmt_.find(q.srcStmt);
  const auto itD = byStmt_.find(q.dstStmt);
  if (itS == byStmt_.end() || itD == byStmt_.end()) return false;
  const std::vector<std::uint32_t>& S = itS->second;
  const std::vector<std::uint32_t>& D = itD->second;
  const auto& ev = trace_->events;
  const bool carried =
      q.level > 0 && q.carrierLoop != fortran::kInvalidStmt;

  // Per-element sweep state. Keys are dense element ids.
  std::unordered_map<std::uint32_t, CarriedSeen> carriedSeen;
  std::unordered_map<std::uint32_t,
                     std::map<std::vector<long long>, std::uint32_t>>
      indepSeen;

  auto tupleOf = [&](const interp::TraceEvent& e,
                     std::vector<long long>* out) {
    out->clear();
    for (fortran::StmtId loop : q.commonLoops) {
      long long it = trace_->iterOf(e.ctx, loop);
      if (it < 0) return false;  // event outside a common loop: no pair
      out->push_back(it);
    }
    return true;
  };

  auto describe = [&](std::uint32_t srcIdx, std::uint32_t dstIdx) {
    const interp::TraceEvent& a = ev[srcIdx];
    const interp::TraceEvent& b = ev[dstIdx];
    std::ostringstream os;
    os << trace_->elementVar[a.element] << " element#" << a.element << ": "
       << (a.isWrite ? "write" : "read") << "@stmt" << a.stmt;
    if (carried) {
      os << " iter " << trace_->iterOf(a.ctx, q.carrierLoop);
    }
    os << " -> " << (b.isWrite ? "write" : "read") << "@stmt" << b.stmt;
    if (carried) {
      os << " iter " << trace_->iterOf(b.ctx, q.carrierLoop)
         << " of carrier loop stmt" << q.carrierLoop;
    } else {
      os << " same iteration (loop-independent)";
    }
    os << " [events " << srcIdx << "," << dstIdx << "]";
    return os.str();
  };

  std::vector<long long> tuple;

  // An event can close a witness as the dst role (against an earlier src)
  // and then open new ones as the src role — in that order, so an event
  // never pairs with itself when srcStmt == dstStmt.
  auto dstCheck = [&](std::uint32_t idx) -> bool {
    const interp::TraceEvent& e = ev[idx];
    if (e.isWrite != dstWrite) return false;
    if (carried) {
      const long long iter = trace_->iterOf(e.ctx, q.carrierLoop);
      if (iter < 0) return false;
      auto it = carriedSeen.find(e.element);
      if (it != carriedSeen.end() && it->second.minIter < iter) {
        if (evidence) *evidence = describe(it->second.evIdx, idx);
        return true;
      }
      return false;
    }
    if (!tupleOf(e, &tuple)) return false;
    auto it = indepSeen.find(e.element);
    if (it == indepSeen.end()) return false;
    auto jt = it->second.find(tuple);
    if (jt != it->second.end()) {
      if (evidence) *evidence = describe(jt->second, idx);
      return true;
    }
    return false;
  };

  auto srcUpdate = [&](std::uint32_t idx) {
    const interp::TraceEvent& e = ev[idx];
    if (e.isWrite != srcWrite) return;
    if (carried) {
      const long long iter = trace_->iterOf(e.ctx, q.carrierLoop);
      if (iter < 0) return;
      CarriedSeen& seen = carriedSeen[e.element];
      if (iter < seen.minIter) {
        seen.minIter = iter;
        seen.evIdx = idx;
      }
      return;
    }
    if (!tupleOf(e, &tuple)) return;
    indepSeen[e.element].emplace(tuple, idx);  // first occurrence wins
  };

  if (q.srcStmt == q.dstStmt) {
    for (std::uint32_t idx : S) {
      if (dstCheck(idx)) return true;
      srcUpdate(idx);
    }
    return false;
  }
  // Merge the two per-statement lists in global seq order.
  std::size_t i = 0, j = 0;
  while (i < S.size() || j < D.size()) {
    if (j >= D.size() || (i < S.size() && S[i] < D[j])) {
      srcUpdate(S[i++]);
    } else {
      if (dstCheck(D[j++])) return true;
    }
  }
  return false;
}

// ---------------------------------------------------------------------------
// Relative execution
// ---------------------------------------------------------------------------

RelativeResult relativeCheck(fortran::Program& program, fortran::StmtId loop,
                             const interp::RunOptions& base,
                             const interp::RunResult& serial,
                             int schedules) {
  RelativeResult rr;
  rr.loop = loop;
  fortran::Stmt* target = nullptr;
  std::vector<fortran::Stmt*> parallelFlags;
  for (const auto& u : program.units) {
    u->forEachStmtMutable([&](fortran::Stmt& s) {
      if (s.isParallel) parallelFlags.push_back(&s);
      if (s.id == loop) target = &s;
    });
  }
  if (!target || target->kind != fortran::StmtKind::Do) {
    rr.detail = "loop statement not found";
    return rr;
  }
  // Force every OTHER loop sequential so a divergence localizes to the
  // claimed-parallel loop under test; restore all markings on exit.
  const bool targetWas = target->isParallel;
  for (fortran::Stmt* s : parallelFlags) s->isParallel = false;
  target->isParallel = true;
  rr.ran = true;
  if (auto it = serial.stmtCounts.find(loop); it != serial.stmtCounts.end()) {
    rr.serialExecutions = it->second;
  }

  for (int k = 0; k < schedules && !rr.diverged; ++k) {
    interp::RunOptions o = base;
    o.trace = nullptr;
    o.checkParallel = true;
    o.shuffleSeed =
        base.shuffleSeed + 0x9e3779b9u * static_cast<unsigned>(k + 1);
    interp::Machine m(program);
    interp::RunResult r = m.run(o);
    std::ostringstream os;
    if (!r.ok) {
      // The reordered schedule crashed a run the serial order completes:
      // that IS a divergence (e.g. a deleted dependence guarded an index).
      rr.diverged = true;
      os << "schedule " << k << " failed at stmt" << r.errorStmt << ": "
         << r.error;
      rr.detail = os.str();
      break;
    }
    for (const interp::Race& race : r.races) {
      if (race.loop != loop) continue;
      rr.diverged = true;
      rr.raceVariables.push_back(race.variable);
      if (rr.detail.empty()) {
        std::ostringstream ros;
        ros << "schedule " << k << ": cross-iteration "
            << (race.outputOnly ? "write-write" : "read-write")
            << " conflict on " << race.variable << " (iterations "
            << race.iterationA << "," << race.iterationB << ")";
        rr.detail = ros.str();
      }
    }
    if (!serial.outputEquals(r)) {
      rr.diverged = true;
      std::size_t at = 0;
      const std::size_t n =
          std::min(serial.output.size(), r.output.size());
      while (at < n && serial.output[at] == r.output[at]) ++at;
      os << "schedule " << k << ": output diverged at position " << at;
      if (at < n) {
        os << " (serial " << serial.output[at] << " vs parallel "
           << r.output[at] << ")";
      } else {
        os << " (lengths " << serial.output.size() << " vs "
           << r.output.size() << ")";
      }
      if (!rr.detail.empty()) rr.detail += "; ";
      rr.detail += os.str();
    }
  }

  target->isParallel = targetWas;
  for (fortran::Stmt* s : parallelFlags) s->isParallel = true;
  std::sort(rr.raceVariables.begin(), rr.raceVariables.end());
  rr.raceVariables.erase(
      std::unique(rr.raceVariables.begin(), rr.raceVariables.end()),
      rr.raceVariables.end());
  return rr;
}

// ---------------------------------------------------------------------------
// ValidationReport
// ---------------------------------------------------------------------------

std::string ValidationReport::str() const {
  std::ostringstream os;
  if (!ran) {
    os << "validation did not run: " << error;
    if (errorStmt != fortran::kInvalidStmt) os << " (stmt" << errorStmt << ")";
    return os.str();
  }
  os << "validated " << checked << " edge(s) against " << events
     << " trace event(s)" << (traceComplete ? "" : " [trace INCOMPLETE]")
     << ": " << refuted << " deletion(s) refuted (" << restored
     << " restored), " << confirmedSafe << " confirmed safe, "
     << witnessedPending << " pending witnessed, " << noWitness
     << " unobserved, " << unvalidated << " unvalidated";
  if (relativeChecks > 0) {
    os << "; relative execution: " << relativeDivergences << "/"
       << relativeChecks << " loop(s) diverged";
  }
  if (uninitReads > 0) {
    os << "; " << uninitReads << " suspected uninitialized read(s)";
  }
  for (const Finding& f : findings) {
    if (f.verdict == Verdict::RefutedDeletion) {
      os << "\n  REFUTED " << f.edge.procedure << " dep#" << f.edge.depId
         << " " << dep::depTypeName(f.edge.type) << " " << f.edge.variable
         << " stmt" << f.edge.srcStmt << "->stmt" << f.edge.dstStmt
         << " level=" << f.edge.level << ": " << f.evidence;
    }
  }
  for (const RelativeResult& r : relative) {
    if (r.diverged) {
      os << "\n  DIVERGED loop stmt" << r.loop << ": " << r.detail;
    }
  }
  return os.str();
}

}  // namespace ps::validate
