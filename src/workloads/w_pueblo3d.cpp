// pueblo3d: hydrodynamics benchmark on an unstructured/linearized 3-D mesh.
// Arrays are addressed as UF(I + MCN, ...) where MCN ("my current
// neighbor") jumps between mesh planes; the assertion
// MCN > IENDV(IR) - ISTRT(IR) is what eliminates the assumed carried
// dependences (§3.3). Sum reductions close the timestep.
namespace ps::workloads {

const char* kPueblo3dSource = R"FTN(
      PROGRAM PUEBLO
      REAL UF(600, 5), RF(600)
      INTEGER ISTRT(8), IENDV(8)
      NPAT = 8
      MCN = 60
CPED$ ASSERT RELATION (MCN .GT. IENDV(IR) - ISTRT(IR))
      DO 5 I = 1, 600
        RF(I) = 0.0
        DO 6 M = 1, 5
          UF(I, M) = FLOAT(I)*0.01 + FLOAT(M)
    6   CONTINUE
    5 CONTINUE
      DO 7 IR = 1, NPAT
        ISTRT(IR) = (IR - 1)*50 + 1
        IENDV(IR) = (IR - 1)*50 + 40
    7 CONTINUE
      DO 8 IR = 1, NPAT
        CALL SWEEPX(UF, ISTRT, IENDV, MCN, IR, 2)
        CALL SWEEPY(UF, ISTRT, IENDV, MCN, IR, 4)
    8 CONTINUE
      CALL ACCUM(UF, RF, 600)
      CALL TSTEP(RF, 600)
      END

      SUBROUTINE SWEEPX(UF, ISTRT, IENDV, MCN, IR, M)
      REAL UF(600, 5)
      INTEGER ISTRT(8), IENDV(8)
C The paper's loop nest, one of "10 loop nests in pueblo3d ... several of
C these consume the majority of the total execution time".
      DO 100 I = ISTRT(IR), IENDV(IR)
        UF(I, M) = UF(I + MCN, M)*0.9 + 0.1
  100 CONTINUE
      END

      SUBROUTINE SWEEPY(UF, ISTRT, IENDV, MCN, IR, M)
      REAL UF(600, 5)
      INTEGER ISTRT(8), IENDV(8)
      DO 200 I = ISTRT(IR), IENDV(IR)
        UF(I, M) = (UF(I + MCN, M) + UF(I + MCN, 1))*0.5
  200 CONTINUE
      END

      SUBROUTINE ACCUM(UF, RF, N)
      REAL UF(600, 5), RF(600)
C Fusion / interchange opportunities: two conformable sweeps over planes.
C TAVG is a killed scalar temporary (scalar kills row of Table 3).
      DO 300 I = 1, N
        TAVG = UF(I, 1) + UF(I, 2)
        RF(I) = TAVG*0.5
  300 CONTINUE
      DO 310 I = 1, N
        RF(I) = RF(I) + UF(I, 4)*0.25
  310 CONTINUE
      END

      SUBROUTINE TSTEP(RF, N)
      REAL RF(600)
C Sum reduction (unrecognized by PED per Table 3).
      DT = 0.0
      DO 400 I = 1, N
        DT = DT + RF(I)*RF(I)
  400 CONTINUE
      WRITE(6, *) DT
      END
)FTN";

}  // namespace ps::workloads
