#include "workloads/emission_driver.h"

#include <cstdint>
#include <sstream>

#include "dependence/graph.h"
#include "transform/transform.h"
#include "workloads/harness.h"
#include "workloads/workloads.h"

namespace ps::workloads {

namespace {

/// Inhibitor edge ids for a loop, optionally restricted to one variable.
std::vector<std::uint32_t> inhibitorIds(transform::Workspace& ws,
                                        const ir::Loop& loop,
                                        const std::string& variable,
                                        bool* othersRemain) {
  std::vector<std::uint32_t> ids;
  if (othersRemain) *othersRemain = false;
  for (const dep::Dependence* d : ws.graph->parallelismInhibitors(loop)) {
    if (variable.empty() || d->variable == variable) {
      ids.push_back(d->id);
    } else if (othersRemain) {
      *othersRemain = true;
    }
  }
  return ids;
}

}  // namespace

MarkCounts markParallelLoops(ped::Session& s, bool forceAllLoops) {
  MarkCounts mc;
  const transform::Target none;
  for (const std::string& proc : s.procedureNames()) {
    if (!s.selectProcedure(proc)) continue;
    // Loop rows are snapshotted up front; DO-statement ids survive the
    // marking transformations (Sequential to Parallel replaces no
    // statements), so the snapshot stays addressable.
    for (const auto& row : s.loops()) {
      if (row.parallel) continue;
      transform::Target t;
      t.loop = row.id;
      std::string err;
      if (s.applyTransformation("Sequential to Parallel", t, &err)) {
        ++mc.safe;
        continue;
      }

      // The paper's reduction workflow: when the only carried edges sit on
      // a recognized sum-reduction accumulator, the user marks the loop
      // PARALLEL anyway — the carried edges are Proven (scalar analysis is
      // exact), so they cannot be deleted, but emission renders the
      // accumulator as REDUCTION(+:acc) and the edges do not block. The
      // mark is a user assertion, so it goes on the flag directly (the
      // same flag validate.cpp toggles), not through the safety-gated
      // transformation.
      transform::Workspace& ws = s.workspace();
      ir::Loop* loop = ws.loopOf(row.id);
      if (!loop) continue;
      transform::SumReduction red;
      if (transform::findSumReduction(*loop, &red)) {
        bool others = false;
        const std::vector<std::uint32_t> accEdges =
            inhibitorIds(ws, *loop, red.accumulator, &others);
        if (!others && !accEdges.empty()) {
          loop->stmt->isParallel = true;
          ++mc.reduction;
          continue;
        }
      }

      if (!forceAllLoops) continue;
      // Refusal fodder: mark the loop PARALLEL with its carried dependences
      // intact — the state an over-eager user session leaves behind — so
      // emission's refusal path is exercised and must name the edges.
      if (!inhibitorIds(ws, *loop, std::string(), nullptr).empty()) {
        loop->stmt->isParallel = true;
        ++mc.forced;
      }
    }
  }
  return mc;
}

EmissionSweep emitAllDecks(const EmissionDriverOptions& opts) {
  EmissionSweep sw;
  for (const Workload& w : all()) {
    DeckEmission de;
    de.name = w.name;
    auto session = loadDeck(w.name);
    if (!session) {
      de.error = "deck failed to load";
      sw.allDecksRan = false;
      sw.decks.push_back(std::move(de));
      continue;
    }
    de.marks = markParallelLoops(*session, opts.forceAllLoops);
    de.report = session->emitOpenMP(opts.emitOptions);
    de.ok = de.report.ran;
    if (!de.ok) {
      de.error = de.report.error;
      sw.allDecksRan = false;
    }

    const emit::EmissionReport& r = de.report;
    sw.loopsConsidered += r.loopsConsidered;
    sw.loopsEmitted += r.loopsEmitted;
    sw.loopsRefused += r.loopsRefused;
    if (r.roundTripChecked && !r.roundTripOk) sw.allRoundTripsOk = false;
    for (const emit::LoopEmission& le : r.loops) {
      if (!le.emitted && le.refusal.empty()) sw.zeroSilentDrops = false;
      if (!le.emitted && le.blocking.empty() && le.refusal.empty()) {
        sw.zeroSilentDrops = false;
      }
    }
    if (r.loopsConsidered !=
        static_cast<int>(r.loops.size())) {
      sw.zeroSilentDrops = false;  // a considered loop vanished from the list
    }
    for (const auto& [k, n] : r.clauseHistogram) sw.clauseHistogram[k] += n;
    sw.emitSeconds += r.emitSeconds;
    sw.validateSeconds += r.validateSeconds;
    sw.roundTripSeconds += r.roundTripSeconds;
    sw.decks.push_back(std::move(de));
  }
  return sw;
}

std::string EmissionSweep::str() const {
  std::ostringstream os;
  os << "emission sweep: " << loopsEmitted << " emitted, " << loopsRefused
     << " refused of " << loopsConsidered << " PARALLEL loop(s) across "
     << decks.size() << " deck(s)\n";
  os << "  decks ran: " << (allDecksRan ? "yes" : "NO")
     << "; round-trips: " << (allRoundTripsOk ? "all OK" : "FAILURES")
     << "; silent drops: " << (zeroSilentDrops ? "none" : "DETECTED") << '\n';
  if (!clauseHistogram.empty()) {
    os << "  clauses:";
    for (const auto& [k, n] : clauseHistogram) os << ' ' << k << '=' << n;
    os << '\n';
  }
  os << "  time: emit=" << emitSeconds << "s validate=" << validateSeconds
     << "s round-trip=" << roundTripSeconds << "s\n";
  for (const DeckEmission& de : decks) {
    os << "  " << de.name << ": ";
    if (!de.ok) {
      os << "FAILED (" << de.error << ")\n";
      continue;
    }
    os << de.report.loopsEmitted << " emitted, " << de.report.loopsRefused
       << " refused (marked safe=" << de.marks.safe
       << " reduction=" << de.marks.reduction << " forced=" << de.marks.forced
       << ")";
    if (de.report.roundTripChecked) {
      os << ", round-trip " << (de.report.roundTripOk ? "OK" : "FAILED");
    }
    os << '\n';
  }
  return os.str();
}

}  // namespace ps::workloads
