#ifndef PS_WORKLOADS_BATCH_H
#define PS_WORKLOADS_BATCH_H

// Parallel batch analysis over the eight workshop decks (the Table 1 / 3
// corpus). Parsing stays sequential (it is a trivial fraction of the time);
// the whole-program analyses of all decks are then scheduled on ONE shared
// TaskPool, so per-procedure tasks and per-nest subtasks from different
// decks interleave and keep every worker busy even when deck sizes are
// skewed (spec77 dwarfs slab2d).

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "dependence/testsuite.h"
#include "ped/session.h"
#include "support/taskpool.h"

namespace ps::workloads {

struct BatchDeck {
  std::string name;
  bool ok = false;            // loaded and analyzed without diagnostics
  std::size_t procedures = 0;
  std::size_t totalDeps = 0;  // edges across every procedure graph
  dep::TestStats stats;       // the deck session's analysis counters
};

struct BatchResult {
  int threads = 1;
  double seconds = 0.0;        // wall time of the analysis phase only
  std::uint64_t tasksExecuted = 0;
  std::uint64_t steals = 0;
  /// Steal-latency telemetry: one row per worker plus the external-waiter
  /// row, covering the analysis phase only (see TaskPool::idleStats).
  std::vector<support::TaskPool::IdleStats> idle;
  std::vector<BatchDeck> decks;  // Table 1 order

  [[nodiscard]] long long memoHits() const {
    long long n = 0;
    for (const auto& d : decks) n += d.stats.memoHits;
    return n;
  }
  [[nodiscard]] long long memoMisses() const {
    long long n = 0;
    for (const auto& d : decks) n += d.stats.memoMisses;
    return n;
  }
};

/// Load every deck, then analyze them all concurrently on one pool of
/// `nThreads` workers (0 = hardware_concurrency; 1 = the deterministic
/// sequential reference). When `keepSessions` is non-null the analyzed
/// sessions are handed back in deck order for further inspection.
BatchResult analyzeAllDecks(
    int nThreads,
    std::vector<std::unique_ptr<ped::Session>>* keepSessions = nullptr);

}  // namespace ps::workloads

#endif  // PS_WORKLOADS_BATCH_H
