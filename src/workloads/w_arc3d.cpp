// arc3d: 3-D hydrodynamics. Two signature obstacles: the FILTER3D work
// array WR1, killed every outer iteration but only provably so through the
// interprocedurally-propagated relation JM = JMAX - 1 established in the
// initialization routine; and a temporary array killed inside a procedure
// called from a loop (interprocedural array kill).
namespace ps::workloads {

const char* kArc3dSource = R"FTN(
      PROGRAM ARC3D
      COMMON /DIMS/ JM, JMAX, KM
      REAL Q(26, 12, 5)
      JMAX = 26
      KM = 12
      JM = JMAX - 1
      CALL QINIT(Q)
      CALL FILT3D(Q)
      CALL SMOOTH(Q)
      CALL RESID(Q)
      END

      SUBROUTINE QINIT(Q)
      COMMON /DIMS/ JM, JMAX, KM
      REAL Q(26, 12, 5)
      DO 10 N = 1, 5
        DO 11 K = 1, KM
          DO 12 J = 1, JMAX
            TQ = FLOAT(J) + FLOAT(K)*0.1
            Q(J, K, N) = TQ + FLOAT(N)*0.01
   12     CONTINUE
   11   CONTINUE
   10 CONTINUE
      END

      SUBROUTINE FILT3D(Q)
      COMMON /DIMS/ JM, JMAX, KM
      REAL Q(26, 12, 5)
      REAL WR1(26, 12)
C The paper's filter3d fragment: WR1 is assigned over (1:JM, 2:KM), its
C boundary row JMAX copied from row JM (= JMAX - 1, by the init relation),
C then consumed. With the relation + array kill analysis the DO 15 loop is
C parallelizable by privatizing WR1.
      DO 15 N = 1, 5
        DO 16 J = 1, JM
          DO 16 K = 2, KM
            WR1(J, K) = Q(J + 1, K, N) - Q(J, K, N)
   16   CONTINUE
        DO 76 K = 2, KM
          WR1(JMAX, K) = WR1(JM, K)
   76   CONTINUE
        DO 17 J = 1, JMAX
          DO 17 K = 2, KM
            Q(J, K, N) = Q(J, K, N) + WR1(J, K)*0.125
   17   CONTINUE
   15 CONTINUE
      END

      SUBROUTINE SMOOTH(Q)
      COMMON /DIMS/ JM, JMAX, KM
      REAL Q(26, 12, 5)
C A work array killed inside the callee: interprocedural array kill.
      DO 20 N = 1, 5
        CALL SMROW(Q, N)
   20 CONTINUE
      END

      SUBROUTINE SMROW(Q, N)
      COMMON /DIMS/ JM, JMAX, KM
      REAL Q(26, 12, 5)
      REAL WRK(26)
      DO 30 K = 2, KM - 1
        DO 31 J = 1, JMAX
          WRK(J) = Q(J, K, N)
   31   CONTINUE
        DO 32 J = 2, JM
          Q(J, K, N) = (WRK(J - 1) + WRK(J + 1))*0.5
   32   CONTINUE
   30 CONTINUE
      END

      SUBROUTINE RESID(Q)
      COMMON /DIMS/ JM, JMAX, KM
      REAL Q(26, 12, 5)
      S = 0.0
      DO 40 N = 1, 5
        DO 41 K = 1, KM
          DO 42 J = 1, JMAX
            S = S + Q(J, K, N)*Q(J, K, N)
   42     CONTINUE
   41   CONTINUE
   40 CONTINUE
      WRITE(6, *) S
      END
)FTN";

}  // namespace ps::workloads
