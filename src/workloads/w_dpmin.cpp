// dpmin: molecular mechanics and dynamics (energy minimization). The force
// accumulation loop scatters through the bond tables IT/JT/KT exactly as in
// the paper's §4.3 fragment; only the user's knowledge that the tables are
// strided and separated can eliminate the dependences.
namespace ps::workloads {

const char* kDpminSource = R"FTN(
      PROGRAM DPMIN
      REAL F(400), X(400), G(400)
      INTEGER IT(30), JT(30), KT(30)
      NBA = 30
      N3 = 300
      DO 5 I = 1, 400
        F(I) = 0.0
        X(I) = FLOAT(I)*0.01
        G(I) = 0.0
    5 CONTINUE
C Bond tables: atom I3 blocks of 3 coordinates, constructed strided so
C IT(I)+3 <= IT(I+1), IT(NBA)+3 <= JT(1), JT(NBA)+3 <= KT(1).
      DO 6 I = 1, 30
        IT(I) = 3*I - 2
        JT(I) = 100 + 3*I - 2
        KT(I) = 200 + 3*I - 2
    6 CONTINUE
CPED$ ASSERT STRIDED (IT, 3)
CPED$ ASSERT STRIDED (JT, 3)
CPED$ ASSERT STRIDED (KT, 3)
CPED$ ASSERT SEPARATED (IT, JT, 3)
CPED$ ASSERT SEPARATED (JT, KT, 3)
CPED$ ASSERT SEPARATED (IT, KT, 3)
      CALL BONDED(F, X, IT, JT, KT, NBA)
      CALL GRAD(F, G, N3)
      CALL ENERGY(F, G, N3)
      END

      SUBROUTINE BONDED(F, X, IT, JT, KT, NBA)
      REAL F(400), X(400)
      INTEGER IT(NBA), JT(NBA), KT(NBA)
C The paper's force-scatter loop, shape-for-shape.
      DO 300 N = 1, NBA
        I3 = IT(N)
        J3 = JT(N)
        K3 = KT(N)
        DT1 = X(I3)*0.1
        DT4 = X(J3)*0.2
        DT7 = X(K3)*0.3
        F(I3 + 1) = F(I3 + 1) - DT1
        F(I3 + 2) = F(I3 + 2) - DT1
        F(J3 + 1) = F(J3 + 1) - DT4
        F(J3 + 2) = F(J3 + 2) - DT4
        F(K3 + 1) = F(K3 + 1) - DT7
        F(K3 + 2) = F(K3 + 2) - DT7
  300 CONTINUE
      END

      SUBROUTINE GRAD(F, G, N3)
      REAL F(400), G(400)
C Distribution opportunity plus old-dialect GOTO guard (control flow N).
      G(1) = F(1)
      DO 400 I = 2, N3
        IF (F(I) .EQ. 0.0) GOTO 401
        G(I) = G(I - 1)*0.5 + F(I)
  401   F(I) = F(I)*0.99
  400 CONTINUE
      END

      SUBROUTINE ENERGY(F, G, N3)
      REAL F(400), G(400)
      E = 0.0
      DO 500 I = 1, N3
        E = E + F(I)*F(I) + G(I)*G(I)
  500 CONTINUE
      WRITE(6, *) E
      END
)FTN";

}  // namespace ps::workloads
