#ifndef PS_WORKLOADS_EMISSION_DRIVER_H
#define PS_WORKLOADS_EMISSION_DRIVER_H

// Emission sweep over the eight workshop decks: mark what a PED user would
// mark PARALLEL (safe Sequential-to-Parallel applications, plus the paper's
// reduction workflow of rejecting the accumulator-confined carried edges
// first), then run Session::emitOpenMP on every deck and aggregate the
// outcomes. The sweep is the zero-silent-drop oracle the CI smoke and the
// emission bench share: every PARALLEL-marked loop across the corpus must
// either emit a round-tripping directive or carry a refusal naming its
// blocking edges.

#include <map>
#include <string>
#include <vector>

#include "emit/emit.h"
#include "ped/session.h"

namespace ps::workloads {

struct EmissionDriverOptions {
  emit::EmitOptions emitOptions;
  /// Additionally force-mark every remaining loop PARALLEL with its
  /// carried dependences intact — the state an over-eager user session
  /// leaves behind (e.g. after PR 7 auto-restores an unsound deletion) —
  /// so emission's refusal path is exercised on real decks.
  bool forceAllLoops = false;
};

/// What the marking phase did to one session.
struct MarkCounts {
  int safe = 0;       // Sequential to Parallel applied as advised
  int reduction = 0;  // accumulator edges rejected first (REDUCTION loops)
  int forced = 0;     // forceAllLoops marks (refusal fodder)
};

/// Mark parallel loops on a loaded deck session the way a workshop user
/// would: apply every safe Sequential-to-Parallel, then assert the PARALLEL
/// mark on sum-reduction loops whose only carried edges sit on the
/// accumulator (emission renders those as REDUCTION(+:acc)). With
/// forceAllLoops, also leave refusal-fodder loops behind (see
/// EmissionDriverOptions).
MarkCounts markParallelLoops(ped::Session& s, bool forceAllLoops);

struct DeckEmission {
  std::string name;
  bool ok = false;    // loaded, marked, and emitOpenMP ran
  std::string error;
  MarkCounts marks;
  emit::EmissionReport report;
};

struct EmissionSweep {
  std::vector<DeckEmission> decks;  // Table 1 order

  int loopsConsidered = 0;
  int loopsEmitted = 0;
  int loopsRefused = 0;
  bool allDecksRan = true;
  bool allRoundTripsOk = true;
  /// Every considered loop either emitted or carries a non-empty refusal.
  bool zeroSilentDrops = true;
  std::map<std::string, int> clauseHistogram;
  double emitSeconds = 0.0;
  double validateSeconds = 0.0;
  double roundTripSeconds = 0.0;

  [[nodiscard]] std::string str() const;
};

/// Load, mark and emit every deck; aggregate the per-deck reports.
EmissionSweep emitAllDecks(const EmissionDriverOptions& opts = {});

}  // namespace ps::workloads

#endif  // PS_WORKLOADS_EMISSION_DRIVER_H
