#include "workloads/batch.h"

#include <chrono>
#include <functional>

#include "support/diagnostics.h"
#include "support/taskpool.h"
#include "workloads/workloads.h"

namespace ps::workloads {

BatchResult analyzeAllDecks(
    int nThreads, std::vector<std::unique_ptr<ped::Session>>* keepSessions) {
  BatchResult result;

  // Parse + initial analysis happens inside Session::load; the batch's
  // measured phase is the explicit whole-program re-analysis below, which
  // is what an interactive user pays after an invalidating change.
  std::vector<std::unique_ptr<ped::Session>> sessions;
  std::vector<bool> loaded;
  for (const Workload& w : all()) {
    BatchDeck deck;
    deck.name = w.name;
    DiagnosticEngine diags;
    auto s = ped::Session::load(w.source, diags);
    bool ok = s != nullptr && !diags.hasErrors();
    loaded.push_back(ok);
    sessions.push_back(std::move(s));
    result.decks.push_back(std::move(deck));
  }

  support::TaskPool pool(nThreads);
  result.threads = pool.threadCount();
  const std::uint64_t tasks0 = pool.tasksExecuted();
  const std::uint64_t steals0 = pool.steals();
  const std::vector<support::TaskPool::IdleStats> idle0 = pool.idleStats();

  // One task per deck; each deck's analyzeOn fans its own per-procedure and
  // per-nest tasks into the same pool, and the deck task helps execute them
  // while it waits — so all eight decks' work interleaves freely.
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::function<void()>> thunks;
  for (std::size_t i = 0; i < sessions.size(); ++i) {
    if (!loaded[i]) continue;
    ped::Session* s = sessions[i].get();
    thunks.push_back([s, &pool] {
      s->resetAnalysisStats();
      (void)s->analyzeOn(pool);
    });
  }
  pool.runAll(std::move(thunks));
  result.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  result.tasksExecuted = pool.tasksExecuted() - tasks0;
  result.steals = pool.steals() - steals0;
  const std::vector<support::TaskPool::IdleStats> idle1 = pool.idleStats();
  for (std::size_t i = 0; i < idle1.size(); ++i) {
    result.idle.push_back(i < idle0.size() ? idle1[i].since(idle0[i])
                                           : idle1[i]);
  }

  for (std::size_t i = 0; i < sessions.size(); ++i) {
    BatchDeck& deck = result.decks[i];
    if (!loaded[i]) continue;
    ped::Session& s = *sessions[i];
    deck.ok = true;
    deck.stats = s.analysisStats();
    for (const std::string& name : s.procedureNames()) {
      ++deck.procedures;
      s.selectProcedure(name);
      deck.totalDeps += s.workspace().graph->all().size();
    }
  }

  if (keepSessions) *keepSessions = std::move(sessions);
  return result;
}

}  // namespace ps::workloads
