// slalom: benchmark program. Its core is the dense factorization nest shown
// in the paper's Figure 1 window (coeff/diag/result), with triangular
// loops, plus a back-substitution and a checksum reduction. Loop unrolling
// and interchange are the transformations the workshop applied here.
namespace ps::workloads {

const char* kSlalomSource = R"FTN(
      PROGRAM SLALOM
      REAL COEFF(24, 24), DIAG(24), RHS(24), RESULT(24)
      NPATCH = 24
      NON0 = 4
      CALL SETUP(COEFF, DIAG, RHS, NPATCH)
      CALL FACTOR(COEFF, DIAG, RHS, RESULT, NON0, NPATCH)
      CALL BACKSUB(COEFF, RESULT, NON0, NPATCH)
      CALL CHECKS(RESULT, NPATCH)
      END

      SUBROUTINE SETUP(COEFF, DIAG, RHS, NPATCH)
      REAL COEFF(24, 24), DIAG(24), RHS(24)
      DO 10 J = 1, NPATCH
        DO 11 I = 1, NPATCH
          TSC = 1.0/FLOAT(I + J)
          COEFF(I, J) = TSC + TSC*TSC*0.01
   11   CONTINUE
        DIAG(J) = 2.0 + FLOAT(J)
        RHS(J) = 1.0
   10 CONTINUE
      END

      SUBROUTINE FACTOR(COEFF, DIAG, RHS, RESULT, NON0, NPATCH)
      REAL COEFF(24, 24), DIAG(24), RHS(24), RESULT(24)
C The Figure 1 loops: transpose-copy (DO 682), scaling (DO 683), and the
C triangular factorization sweep (DO 607/605/604).
      DO 682 I = NON0 - 1, NPATCH - 1
        COEFF(I, I) = DIAG(I)
        RESULT(I) = RHS(I)
        DO 681 J = 1, I - 1
          COEFF(J, I) = COEFF(I, J)
  681   CONTINUE
  682 CONTINUE
      DO 683 J = 1, NON0 - 2
        COEFF(J, J) = 1.0/DIAG(J)
        RESULT(J) = RHS(J)
  683 CONTINUE
      DO 607 J = NON0 - 1, NPATCH - 1
        DO 605 K = NON0 - 1, J - 1
          DO 604 I = 1, K - 1
            COEFF(K, J) = COEFF(K, J) - COEFF(I, K)*COEFF(I, J)
  604     CONTINUE
  605   CONTINUE
  607 CONTINUE
      END

      SUBROUTINE BACKSUB(COEFF, RESULT, NON0, NPATCH)
      REAL COEFF(24, 24), RESULT(24)
      DO 700 J = NPATCH - 1, NON0 - 1, -1
        T = RESULT(J)
        DO 710 I = J + 1, NPATCH - 1
          T = T - COEFF(J, I)*RESULT(I)
  710   CONTINUE
        RESULT(J) = T/COEFF(J, J)
  700 CONTINUE
      END

      SUBROUTINE CHECKS(RESULT, NPATCH)
      REAL RESULT(24)
      S = 0.0
      DO 800 I = 1, NPATCH
        S = S + RESULT(I)*RESULT(I)
  800 CONTINUE
      WRITE(6, *) S
      END
)FTN";

}  // namespace ps::workloads
