#include "workloads/workloads.h"

namespace ps::workloads {

extern const char* kSpec77Source;
extern const char* kNeossSource;
extern const char* kNxsnsSource;
extern const char* kDpminSource;
extern const char* kSlab2dSource;
extern const char* kSlalomSource;
extern const char* kPueblo3dSource;
extern const char* kArc3dSource;

const std::vector<Workload>& all() {
  static const std::vector<Workload> kAll = [] {
    std::vector<Workload> w;
    w.push_back({"spec77", "weather simulation code",
                 "after Steve Poole (IBM Kingston) & Lo Hsieh (IBM Palo Alto)",
                 kSpec77Source,
                 /*arrayKills=*/false, /*reductions=*/true,
                 /*indexArrays=*/false, /*controlFlow=*/false,
                 /*interproc=*/true});
    w.push_back({"neoss", "thermodynamics code",
                 "after Mary Zosel (Lawrence Livermore National Laboratory)",
                 kNeossSource, false, true, false, true, false});
    w.push_back({"nxsns", "quantum mechanics code",
                 "after John Engle (Lawrence Livermore National Laboratory)",
                 kNxsnsSource, false, true, true, false, false});
    w.push_back({"dpmin", "molecular mechanics and dynamics program",
                 "after Marcia Pottle (Cornell Theory Center)", kDpminSource,
                 false, true, true, false, false});
    w.push_back({"slab2d", "2-D severe storm fluid flow prototype",
                 "after Roy Heimbach (NCSA)", kSlab2dSource, true, true,
                 false, false, false});
    w.push_back({"slalom", "benchmark program",
                 "after Roy Heimbach (NCSA)", kSlalomSource, false, true,
                 false, false, false});
    w.push_back({"pueblo3d", "hydrodynamics benchmark program",
                 "after Ralph Brickner (Los Alamos National Laboratory)",
                 kPueblo3dSource, false, true, false, false, false});
    w.push_back({"arc3d", "3-D hydrodynamics code",
                 "after Doreen Cheng (NASA Ames Research Center)",
                 kArc3dSource, true, true, false, false, false});
    return w;
  }();
  return kAll;
}

const Workload* byName(const std::string& name) {
  for (const auto& w : all()) {
    if (w.name == name) return &w;
  }
  return nullptr;
}

}  // namespace ps::workloads
