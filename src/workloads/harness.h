#ifndef PS_WORKLOADS_HARNESS_H
#define PS_WORKLOADS_HARNESS_H

// Shared determinism-suite harness: the canonical observable-state
// snapshot (every field of every dependence edge, the degradation report,
// a deep audit) and the fixed-seed statement-edit generator. Used by the
// edit-storm suite, the persistent-program-database warm-start and
// corruption suites, and the CI warm-start tool — all of which assert the
// same property: two roads to the same program state produce bit-identical
// snapshots.

#include <memory>
#include <random>
#include <string>

#include "fortran/ast.h"
#include "ped/session.h"

namespace ps::workloads {

using Rng = std::mt19937;

/// Load a named deck into a fully analyzed session; null on any failure.
std::unique_ptr<ped::Session> loadDeck(const std::string& name);

/// One dependence edge, every field rendered.
std::string serializeDep(const dep::Dependence& d);

/// Everything observable about a session's analysis results: per-procedure
/// dependence graphs in edge order, the degradation report, and a deep
/// audit. Two sessions over identically parsed source agree on this string
/// iff their analysis states are bit-identical.
std::string analysisSnapshot(ped::Session& s);

struct EditStep {
  enum class Kind { Rewrite, Insert, Delete };
  Kind kind = Kind::Rewrite;
  std::string proc;
  fortran::StmtId stmt = fortran::kInvalidStmt;
  std::string text;  // Rewrite/Insert payload
};

/// Generate the next step against the reference session's current state.
/// Targets are unlabeled scalar/array assignment statements so every step
/// is a valid edit that keeps the deck auditable; the resulting statement
/// id is applied verbatim to the other sessions (ids stay in lockstep: all
/// sessions perform the same program-order id assignments). False when the
/// deck ran dry of editable statements.
bool nextStep(ped::Session& s, Rng& rng, EditStep* step);

/// Apply a generated step; false when the session rejects it (or the
/// procedure cannot be selected).
bool applyStep(ped::Session& s, const EditStep& step);

}  // namespace ps::workloads

#endif  // PS_WORKLOADS_HARNESS_H
