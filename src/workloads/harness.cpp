#include "workloads/harness.h"

#include <cctype>
#include <sstream>
#include <vector>

#include "dependence/graph.h"
#include "fortran/pretty.h"
#include "support/diagnostics.h"
#include "workloads/workloads.h"

namespace ps::workloads {

std::unique_ptr<ped::Session> loadDeck(const std::string& name) {
  const Workload* w = byName(name);
  if (!w) return nullptr;
  ps::DiagnosticEngine diags;
  auto session = ped::Session::load(w->source, diags);
  if (!session || diags.hasErrors()) return nullptr;
  session->setDeckName(name);
  return session;
}

std::string serializeDep(const dep::Dependence& d) {
  std::ostringstream os;
  os << d.id << ' ' << dep::depTypeName(d.type) << ' ' << d.srcStmt << "->"
     << d.dstStmt << ' ' << d.variable;
  if (d.srcRef) os << " src=" << fortran::printExpr(*d.srcRef);
  if (d.dstRef) os << " dst=" << fortran::printExpr(*d.dstRef);
  os << " level=" << d.level << " carrier=" << d.carrierLoop
     << " common=" << d.commonLoop << " vec=" << d.vector.str() << ' '
     << dep::depMarkName(d.mark) << " origin=" << static_cast<int>(d.origin)
     << " interproc=" << d.interprocedural << " degraded=" << d.degraded
     << " reason=" << d.reason;
  if (!d.evidence.empty()) os << " evidence=" << d.evidence;
  return os.str();
}

std::string analysisSnapshot(ped::Session& s) {
  std::ostringstream os;
  for (const std::string& name : s.procedureNames()) {
    if (!s.selectProcedure(name)) {
      os << "== " << name << " SELECT FAILED\n";
      continue;
    }
    os << "== " << name << '\n';
    for (const dep::Dependence& d : s.workspace().graph->all()) {
      os << serializeDep(d) << '\n';
    }
  }
  ped::DegradationReport rep = s.degradationReport();
  os << "degradation fm=" << rep.fmDegraded
     << " answers=" << rep.degradedAnswers
     << " linearize=" << rep.linearizeDegraded
     << " symbolic=" << rep.symbolicTruncated << '\n';
  for (const auto& e : rep.edges) {
    os << "degraded-edge " << e.procedure << ' ' << e.depId << ' ' << e.type
       << ' ' << e.variable << " level=" << e.level << '\n';
  }
  audit::Report audit = s.auditNow(true);
  os << "audit ok=" << audit.ok() << '\n';
  for (const auto& v : audit.violations) os << "violation " << v.str() << '\n';
  return os.str();
}

namespace {

std::size_t pick(Rng& rng, std::size_t n) {
  return n == 0 ? 0 : std::uniform_int_distribution<std::size_t>(0, n - 1)(rng);
}

}  // namespace

bool nextStep(ped::Session& s, Rng& rng, EditStep* step) {
  const std::vector<std::string> procs = s.procedureNames();
  // Try a few procedures before giving up (a deck could run out of
  // editable assignments after enough deletions).
  for (int attempt = 0; attempt < 8; ++attempt) {
    const std::string& proc = procs[pick(rng, procs.size())];
    if (!s.selectProcedure(proc)) continue;
    struct Cand {
      fortran::StmtId stmt;
      std::string text;
    };
    std::vector<Cand> cands;
    for (const auto& row : s.sourcePane()) {
      if (row.loopStart) continue;
      if (row.text.rfind("IF", 0) == 0) continue;
      if (row.text.rfind("CALL", 0) == 0) continue;
      if (row.text.rfind("GOTO", 0) == 0) continue;
      // Labeled statements may be branch targets; deleting or replacing
      // them is a different (checked) operation.
      if (!row.text.empty() &&
          std::isdigit(static_cast<unsigned char>(row.text[0]))) {
        continue;
      }
      std::size_t eq = row.text.find(" = ");
      if (eq == std::string::npos) continue;
      cands.push_back({row.stmt, row.text});
    }
    if (cands.empty()) continue;
    const Cand& c = cands[pick(rng, cands.size())];
    step->proc = proc;
    step->stmt = c.stmt;
    switch (pick(rng, 4)) {
      case 0:
      case 1: {
        // Rewrite: wrap the RHS so subscripts and the variable set are
        // preserved but the statement text (and splice signature) moves.
        std::size_t eq = c.text.find(" = ");
        step->kind = EditStep::Kind::Rewrite;
        step->text = c.text.substr(0, eq) + " = (" +
                     c.text.substr(eq + 3) + ")*2";
        break;
      }
      case 2:
        step->kind = EditStep::Kind::Insert;
        step->text = "QSTORM = QSTORM + 1";
        break;
      default:
        step->kind = EditStep::Kind::Delete;
        break;
    }
    return true;
  }
  return false;
}

bool applyStep(ped::Session& s, const EditStep& step) {
  if (!s.selectProcedure(step.proc)) return false;
  switch (step.kind) {
    case EditStep::Kind::Rewrite:
      return s.editStatement(step.stmt, step.text);
    case EditStep::Kind::Insert:
      return s.insertStatementAfter(step.stmt, step.text);
    case EditStep::Kind::Delete:
      return s.deleteStatement(step.stmt);
  }
  return false;
}

}  // namespace ps::workloads
