#include "workloads/server_driver.h"

#include "workloads/workloads.h"

namespace ps::workloads {

namespace {

server::Edit toServerEdit(const EditStep& step) {
  server::Edit e;
  switch (step.kind) {
    case EditStep::Kind::Rewrite:
      e.kind = server::Edit::Kind::Rewrite;
      break;
    case EditStep::Kind::Insert:
      e.kind = server::Edit::Kind::Insert;
      break;
    case EditStep::Kind::Delete:
      e.kind = server::Edit::Kind::Delete;
      break;
  }
  e.proc = step.proc;
  e.stmt = step.stmt;
  e.text = step.text;
  return e;
}

bool applySolo(ped::Session& s, const server::Edit& e) {
  if (!s.selectProcedure(e.proc)) return false;
  switch (e.kind) {
    case server::Edit::Kind::Rewrite:
      return s.editStatement(e.stmt, e.text);
    case server::Edit::Kind::Insert:
      return s.insertStatementAfter(e.stmt, e.text);
    case server::Edit::Kind::Delete:
      return s.deleteStatement(e.stmt);
  }
  return false;
}

}  // namespace

std::vector<server::Edit> stormEdits(const StormScript& script) {
  std::vector<server::Edit> edits;
  auto ref = loadDeck(script.deck);
  if (!ref) return edits;
  // Deferred analysis: the generator only needs the evolving AST (source
  // pane rows); full re-analysis per generated edit would be wasted work.
  ref->setDeferredAnalysis(true);
  Rng rng(script.seed);
  EditStep step;
  const int total = script.bursts * script.editsPerBurst;
  for (int i = 0; i < total; ++i) {
    if (!nextStep(*ref, rng, &step)) break;
    if (!applyStep(*ref, step)) break;  // keep the generator in lockstep
    edits.push_back(toServerEdit(step));
  }
  return edits;
}

StormResult runStormSession(server::AnalysisServer& srv,
                            const std::string& sessionName,
                            const StormScript& script,
                            const std::vector<server::Edit>* edits) {
  StormResult out;
  const Workload* w = byName(script.deck);
  if (!w) return out;
  std::vector<server::Edit> local;
  if (!edits) {
    local = stormEdits(script);
    edits = &local;
  }
  server::ServerSession* ss = srv.openSession(sessionName, w->source);
  if (!ss) return out;
  std::size_t next = 0;
  for (int b = 0; b < script.bursts && next < edits->size(); ++b) {
    for (int i = 0; i < script.editsPerBurst && next < edits->size(); ++i) {
      ss->submit((*edits)[next++]);
    }
    server::ServerSession::SettleReport r = ss->settle();
    out.totalSettleMillis += r.settleMillis;
    out.settles.push_back(r);
  }
  out.snapshot = analysisSnapshot(ss->session());
  out.liveTests = ss->session().analysisStats().testsRun();
  out.ok = true;
  srv.closeSession(sessionName);
  return out;
}

StormResult runSoloBaseline(const StormScript& script,
                            const std::vector<server::Edit>* edits) {
  StormResult out;
  std::vector<server::Edit> local;
  if (!edits) {
    local = stormEdits(script);
    edits = &local;
  }
  auto s = loadDeck(script.deck);
  if (!s) return out;
  s->setDeferredAnalysis(true);
  std::size_t next = 0;
  for (int b = 0; b < script.bursts && next < edits->size(); ++b) {
    server::ServerSession::SettleReport r;
    for (int i = 0; i < script.editsPerBurst && next < edits->size(); ++i) {
      ++r.editsQueued;
      if (applySolo(*s, (*edits)[next++])) {
        ++r.editsApplied;
      } else {
        ++r.editsRejected;
      }
    }
    r.dirtyProcedures = s->dirtyProcedures().size();
    s->analyzeParallel(1);  // the poolless sequential reference path
    out.settles.push_back(r);
  }
  out.snapshot = analysisSnapshot(*s);
  out.liveTests = s->analysisStats().testsRun();
  out.ok = true;
  return out;
}

}  // namespace ps::workloads
