// spec77: weather simulation. The key structure is GLOOP — a small-trip
// loop over latitudes whose body is procedure calls; each callee sweeps many
// grid points. Interprocedural section analysis proves the latitude loop
// parallel; the useful parallelism, however, sits inside the callees, which
// is why the paper's §5.3 asks for loop embedding/extraction.
namespace ps::workloads {

const char* kSpec77Source = R"FTN(
      PROGRAM SPEC77
      COMMON /GRID/ NPTS, NLAT
      REAL FLN(64, 12), QLN(64, 12), WGT(12)
      REAL PS(64), TS(64)
      NPTS = 64
      NLAT = 12
      DO 10 L = 1, NLAT
        WGT(L) = 1.0/FLOAT(L + 1)
   10 CONTINUE
      DO 20 I = 1, NPTS
        PS(I) = 100.0 + FLOAT(I)*0.25
        TS(I) = 273.0 + FLOAT(MOD(I, 7))
   20 CONTINUE
      CALL INITF(FLN, QLN, NPTS, NLAT)
      CALL GLOOP(FLN, QLN, WGT, NPTS, NLAT)
      CALL GWATER(PS, TS, NPTS)
      CALL DIAGNO(FLN, PS, NPTS, NLAT)
      END

      SUBROUTINE INITF(FLN, QLN, NPTS, NLAT)
      REAL FLN(64, 12), QLN(64, 12)
      DO 30 L = 1, NLAT
        DO 31 I = 1, NPTS
          FLN(I, L) = FLOAT(I)*0.01 + FLOAT(L)
          QLN(I, L) = 0.0
   31   CONTINUE
   30 CONTINUE
      END

      SUBROUTINE GLOOP(FLN, QLN, WGT, NPTS, NLAT)
      REAL FLN(64, 12), QLN(64, 12), WGT(12)
C The latitude loop: at most NLAT (12) iterations, limiting thread
C granularity. Each call touches exactly its own latitude column, so
C interprocedural regular sections prove the loop parallel. The callees
C hold the long loops (NPTS iterations) -- the spec77 situation.
      DO 100 L = 1, NLAT
        CALL FL22(FLN, QLN, WGT(L), NPTS, L)
        CALL FILTLAT(FLN, NPTS, L)
  100 CONTINUE
      END

      SUBROUTINE FL22(FLN, QLN, W, NPTS, L)
      REAL FLN(64, 12), QLN(64, 12)
      DO 110 I = 1, NPTS
        QLN(I, L) = FLN(I, L)*W
  110 CONTINUE
      DO 120 I = 2, NPTS
        FLN(I, L) = FLN(I, L) + QLN(I - 1, L)*0.5
  120 CONTINUE
      END

      SUBROUTINE FILTLAT(FLN, NPTS, L)
      REAL FLN(64, 12)
      DO 130 I = 2, NPTS - 1
        T = FLN(I, L)
        FLN(I, L) = T*0.5 + (FLN(I - 1, L) + FLN(I + 1, L))*0.25
  130 CONTINUE
      END

      SUBROUTINE GWATER(PS, TS, NPTS)
      REAL PS(64), TS(64)
      DO 200 I = 1, NPTS
        E = 6.11*EXP(0.067*(TS(I) - 273.0))
        PS(I) = PS(I) + E*0.01
  200 CONTINUE
      END

      SUBROUTINE DIAGNO(FLN, PS, NPTS, NLAT)
      REAL FLN(64, 12), PS(64)
      SUM1 = 0.0
      DO 300 L = 1, NLAT
        DO 301 I = 1, NPTS
          SUM1 = SUM1 + FLN(I, L)
  301   CONTINUE
  300 CONTINUE
      SUM2 = 0.0
      DO 310 I = 1, NPTS
        SUM2 = SUM2 + PS(I)
  310 CONTINUE
      WRITE(6, *) SUM1, SUM2
      END
)FTN";

}  // namespace ps::workloads
