#ifndef PS_WORKLOADS_SERVER_DRIVER_H
#define PS_WORKLOADS_SERVER_DRIVER_H

// Scripted §3.1-style editing sessions for the analysis server: a fixed
// seed generates a deck's edit stream once, and the same stream replays
// either as a server session (bursts submitted to the edit queue, settled
// on the shared pool) or as the solo cold baseline (the same bursts,
// settled sequentially). The storm suite and the server bench both assert
// the same property: server snapshot == solo snapshot, byte for byte, at
// every thread count.

#include <string>
#include <vector>

#include "server/server.h"
#include "workloads/harness.h"

namespace ps::workloads {

/// One scripted session: which deck, which seed, and the edit cadence
/// (edit bursts separated by settles — the paper's model of typing, then
/// pausing while analysis catches up).
struct StormScript {
  std::string deck;
  unsigned seed = 1;
  int bursts = 3;
  int editsPerBurst = 4;
};

/// The seeded edit stream for `script`: generated against (and applied to)
/// a private reference session, so statement ids stay valid as the program
/// evolves. Deterministic — same script, same stream. Sessions replaying
/// it from the same deck stay in id lockstep with the generator.
std::vector<server::Edit> stormEdits(const StormScript& script);

struct StormResult {
  bool ok = false;       // session opened and every burst settled
  std::string snapshot;  // final analysisSnapshot
  std::vector<server::ServerSession::SettleReport> settles;
  long long liveTests = 0;  // dependence tests this session ran itself
  double totalSettleMillis = 0.0;
};

/// Drive one scripted session on the server: open (warm-attach to the
/// shared store image/memo/pool), submit each burst, settle, snapshot,
/// close. Pass `edits` to reuse a precomputed stream (the bench opens many
/// sessions over one script); null generates it here.
StormResult runStormSession(server::AnalysisServer& server,
                            const std::string& sessionName,
                            const StormScript& script,
                            const std::vector<server::Edit>* edits = nullptr);

/// The bit-identity reference: a solo cold session over the same deck,
/// the same edit stream in the same bursts, each settled with the poolless
/// sequential path (nThreads == 1).
StormResult runSoloBaseline(const StormScript& script,
                            const std::vector<server::Edit>* edits = nullptr);

}  // namespace ps::workloads

#endif  // PS_WORKLOADS_SERVER_DRIVER_H
