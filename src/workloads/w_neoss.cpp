// neoss: thermodynamics. Fortran-66 style control flow — arithmetic IFs and
// GOTO-built conditionals inside the hot loops (the paper's §5.3 example is
// lifted verbatim into NSTATE). Control-flow structuring is needed before
// the loops can be transformed; distribution opportunities exist.
namespace ps::workloads {

const char* kNeossSource = R"FTN(
      PROGRAM NEOSS
      COMMON /TABL/ NR
      REAL DENV(48), RES(50), EOS(48), PRES(48)
      NR = 24
      DO 5 I = 1, 48
        DENV(I) = FLOAT(I)*0.4 - 9.0
        EOS(I) = 0.0
        PRES(I) = 0.0
    5 CONTINUE
      DO 6 I = 1, 50
        RES(I) = FLOAT(I)*0.1
    6 CONTINUE
      CALL NSTATE(DENV, RES, 48)
      CALL PTABLE(DENV, EOS, 48)
      CALL PFORCE(EOS, PRES, 48)
      CALL REPORT(RES, PRES, 48)
      END

      SUBROUTINE NSTATE(DENV, RES, N)
      COMMON /TABL/ NR
      REAL DENV(N), RES(50)
C The paper's fragment: an arithmetic IF plus GOTOs forming an
C if-then-else by hand. PED must structure this before transforming.
      DO 50 K = 1, N
        IF (DENV(K) - RES(NR + 1)) 100, 10, 10
   10   CONTINUE
        DENV(K) = DENV(K)*2.0
        GOTO 101
  100   DENV(K) = 0.0
  101   RES(K) = DENV(K)
   50 CONTINUE
      END

      SUBROUTINE PTABLE(DENV, EOS, N)
      REAL DENV(N), EOS(N)
C A second unstructured loop: bail-out GOTO guarding a log evaluation.
      DO 60 K = 1, N
        IF (DENV(K) .LE. 0.0) GOTO 61
        EOS(K) = LOG(DENV(K) + 1.0)
        GOTO 62
   61   EOS(K) = 0.0
   62   CONTINUE
   60 CONTINUE
      END

      SUBROUTINE PFORCE(EOS, PRES, N)
      REAL EOS(N), PRES(N)
C Distribution opportunity: a recurrence tangled with independent work.
      PRES(1) = EOS(1)
      DO 70 K = 2, N
        PRES(K) = PRES(K - 1)*0.9 + EOS(K)
        EOS(K) = EOS(K)*0.5
   70 CONTINUE
C A killed scalar temporary: parallel once privatized (scalar kills).
      DO 75 K = 1, N
        TCLMP = EOS(K)*1.5 + 0.25
        EOS(K) = TCLMP*TCLMP
   75 CONTINUE
      END

      SUBROUTINE REPORT(RES, PRES, N)
      REAL RES(50), PRES(N)
      S1 = 0.0
      S2 = 0.0
      DO 80 K = 1, N
        S1 = S1 + RES(K)
        S2 = S2 + PRES(K)
   80 CONTINUE
      WRITE(6, *) S1, S2
      END
)FTN";

}  // namespace ps::workloads
