// slab2d: 2-D severe-storm fluid-flow prototype. Work arrays are assigned
// and consumed within each sweep of the outer time/row loop — the values
// never cross iterations, but only array kill analysis can prove it
// ("automatic privatization of one or more killed arrays is sufficient").
namespace ps::workloads {

const char* kSlab2dSource = R"FTN(
      PROGRAM SLAB2D
      REAL U(34, 20), V(34, 20), P(34, 20)
      NX = 34
      NY = 20
      DO 5 J = 1, NY
        DO 6 I = 1, NX
          U(I, J) = SIN(FLOAT(I)*0.1) + FLOAT(J)*0.01
          V(I, J) = COS(FLOAT(J)*0.1)
          P(I, J) = 1000.0
    6   CONTINUE
    5 CONTINUE
      CALL STEP(U, V, P, NX, NY)
      CALL BNDRY(U, V, NX, NY)
      CALL STEP(U, V, P, NX, NY)
      CALL BNDRY(U, V, NX, NY)
      CALL NORM(U, V, P, NX, NY)
      END

      SUBROUTINE BNDRY(U, V, NX, NY)
      REAL U(34, 20), V(34, 20)
      DO 400 J = 1, NY
        U(1, J) = 0.0
        U(NX, J) = 0.0
        V(1, J) = V(2, J)
        V(NX, J) = V(NX - 1, J)
  400 CONTINUE
      END

      SUBROUTINE STEP(U, V, P, NX, NY)
      REAL U(34, 20), V(34, 20), P(34, 20)
      REAL WFLX(34), WADV(34)
C The row sweep: WFLX and WADV are temporaries killed at the top of every
C J iteration. Privatizing them (array kill analysis) makes the J loop
C parallel; a compiler without it sees carried anti/flow dependences.
      DO 100 J = 2, NY - 1
        DO 110 I = 1, NX
          WFLX(I) = U(I, J)*V(I, J)
  110   CONTINUE
        DO 120 I = 1, NX
          WADV(I) = WFLX(I)*0.5 + P(I, J)*0.001
  120   CONTINUE
        DO 130 I = 2, NX - 1
          U(I, J) = U(I, J) + (WADV(I + 1) - WADV(I - 1))*0.25
  130   CONTINUE
  100 CONTINUE
C Pressure relaxation: T is a scalar temporary (scalar expansion was the
C workshop's most-used transformation).
      DO 200 J = 2, NY - 1
        DO 210 I = 2, NX - 1
          T = (P(I - 1, J) + P(I + 1, J))*0.5
          P(I, J) = T*0.98 + 20.0
  210   CONTINUE
  200 CONTINUE
      END

      SUBROUTINE NORM(U, V, P, NX, NY)
      REAL U(34, 20), V(34, 20), P(34, 20)
      S = 0.0
      DO 300 J = 1, NY
        DO 310 I = 1, NX
          S = S + U(I, J)*U(I, J) + V(I, J)*V(I, J) + P(I, J)*0.0001
  310   CONTINUE
  300 CONTINUE
      WRITE(6, *) S
      END
)FTN";

}  // namespace ps::workloads
