#ifndef PS_WORKLOADS_WORKLOADS_H
#define PS_WORKLOADS_WORKLOADS_H

#include <string>
#include <vector>

namespace ps::workloads {

/// One of the eight workshop programs (Table 1), rebuilt synthetically: the
/// same domain, the same parallelization obstacles, and the exact code
/// patterns the paper quotes. Absolute line counts differ from the
/// originals (which were proprietary); the obstacle structure is what the
/// evaluation tables depend on.
struct Workload {
  std::string name;
  std::string description;
  std::string contributorNote;  // the Table 1 provenance line, paraphrased
  const char* source = nullptr;

  // Expected Table 3 "N" rows for this program.
  bool needsArrayKills = false;
  bool needsReductions = false;
  bool needsIndexArrays = false;
  // Expected Table 4 "N" rows.
  bool needsControlFlow = false;
  bool needsInterprocedural = false;
};

/// All eight programs, in Table 1 order.
[[nodiscard]] const std::vector<Workload>& all();

/// Lookup by name; null when unknown.
[[nodiscard]] const Workload* byName(const std::string& name);

}  // namespace ps::workloads

#endif  // PS_WORKLOADS_WORKLOADS_H
