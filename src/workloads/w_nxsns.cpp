// nxsns: quantum mechanics (neutron cross sections). The signature obstacle
// is a scalar killed inside a procedure invoked from a loop — only
// interprocedural scalar KILL analysis exposes the privatization. Index
// arrays (level lookup tables) block the remaining loops.
namespace ps::workloads {

const char* kNxsnsSource = R"FTN(
      PROGRAM NXSNS
      REAL SIG(40), EGRID(40), FLUX(40), RATE(40)
      INTEGER LVL(40)
      DO 5 I = 1, 40
        EGRID(I) = FLOAT(I)*0.05
        FLUX(I) = 1.0/(1.0 + EGRID(I))
        SIG(I) = 0.0
        RATE(I) = 0.0
        LVL(I) = MOD(I*7, 40) + 1
    5 CONTINUE
      CALL XSECT(SIG, EGRID, 40)
      CALL COLLAPSE(SIG, FLUX, RATE, LVL, 40)
      CALL TOTAL(RATE, 40)
      END

      SUBROUTINE XSECT(SIG, EGRID, N)
      REAL SIG(N), EGRID(N)
C T is killed inside RESON on every call: the loop is parallel once
C interprocedural KILL analysis proves the scalar private.
      DO 10 I = 1, N
        CALL RESON(EGRID(I), T)
        SIG(I) = T + 0.1
   10 CONTINUE
      END

      SUBROUTINE RESON(E, T)
      T = 1.0/(0.01 + (E - 0.75)*(E - 0.75))
      IF (T .GT. 50.0) T = 50.0
      END

      SUBROUTINE COLLAPSE(SIG, FLUX, RATE, LVL, N)
      REAL SIG(N), FLUX(N), RATE(N)
      INTEGER LVL(N)
C Index-array scatter: LVL is a permutation read from a table; without an
C assertion the system must assume all RATE elements collide.
      DO 20 I = 1, N
        RATE(LVL(I)) = SIG(I)*FLUX(I)
   20 CONTINUE
      END

      SUBROUTINE TOTAL(RATE, N)
      REAL RATE(N)
C Old-dialect guard: GOTO skipping negative rates (control flow N).
      S = 0.0
      DO 30 I = 1, N
        IF (RATE(I) .LT. 0.0) GOTO 31
        S = S + RATE(I)
   31   CONTINUE
   30 CONTINUE
      WRITE(6, *) S
      END
)FTN";

}  // namespace ps::workloads
