#ifndef PS_PDB_PDB_H
#define PS_PDB_PDB_H

// The persistent program database: a content-addressed, checksummed record
// store modeled on the ParaScope program database — the on-disk layer PED
// sessions reopened instead of recomputing whole-program analysis.
//
// File layout (all little-endian, see serial.h):
//
//   header:  magic[8]              "PSPDB" 0xDB CR LF (text-mode tripwire)
//            u32  format version   kFormatVersion
//            u32  endian tag       0x01020304 as written by this library
//            str  build stamp      compiler/config fingerprint
//   records: u32  record type      RecordType
//            u64  key              content hash (xxh64 seed kKeySeed)
//            u32  payload length
//            payload bytes         (begin with u64 verify hash, seed
//                                   kVerifySeed, of the SAME key material)
//            u64  xxh64(payload)
//            u32  crc32(payload)
//
// Verification is layered, and every layer fails soft:
//   - header mismatch (magic / version / endian / stamp) rejects the whole
//     store — `stats().rejected` — and the session runs cold;
//   - a record whose checksums disagree with its payload is quarantined and
//     scanning continues at the next frame;
//   - a frame that overruns the file (truncation, corrupted length) stops
//     the scan and quarantines the remainder;
//   - the in-payload verify hash catches a payload filed under the wrong
//     key (hash collision, or a forged frame with recomputed checksums) —
//     checked by the consumer via `StoreReader::verifiedFind`.
// Nothing in this module throws on malformed input.

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <utility>

#include "pdb/serial.h"

namespace ps::pdb {

inline constexpr std::uint32_t kFormatVersion = 2;
inline constexpr std::uint32_t kEndianTag = 0x01020304;
inline constexpr std::uint64_t kKeySeed = 0;
inline constexpr std::uint64_t kVerifySeed = 0x5ca1ab1e0ddba11ULL;

enum class RecordType : std::uint32_t {
  Summary = 1,  // one interprocedural summary per procedure
  Graph = 2,    // one dependence-graph slice per procedure
  Memo = 3,     // the session-wide DepMemo snapshot
  Marks = 4,    // the session's user/validator dependence marks + evidence
  Emission = 5,  // per-loop OpenMP emission eligibility + validation evidence
};

/// Compiler/configuration fingerprint baked into the header. Two builds
/// with the same stamp agree on every serialized encoding; a skewed stamp
/// rejects the store rather than risking a silent misread.
[[nodiscard]] std::string buildStamp();

/// Content-address of a key-material string (what records are filed under).
[[nodiscard]] std::uint64_t contentKey(std::string_view material);
/// Independent second hash of the SAME material, stored inside the payload.
[[nodiscard]] std::uint64_t verifyKey(std::string_view material);

struct StoreStats {
  std::size_t records = 0;      // frames accepted by the integrity layer
  std::size_t quarantined = 0;  // frames dropped by any verification layer
  bool rejected = false;        // header-level failure: whole store unusable
};

/// Accumulates records and renders the store image (header + frames).
class StoreWriter {
 public:
  StoreWriter();

  /// File `payload` under `key`. The payload's first field must be
  /// verifyKey() of the same material that produced `key`.
  void add(RecordType type, std::uint64_t key, std::string_view payload);

  [[nodiscard]] const std::string& bytes() const { return buf_; }

 private:
  std::string buf_;
};

/// Parses and verifies a store image. Construction never fails — a
/// malformed image simply yields an empty (or partial) record map with the
/// damage tallied in stats().
class StoreReader {
 public:
  explicit StoreReader(std::string bytes);

  /// The payload filed under (type, key); nullopt on miss. No verify-hash
  /// check — prefer verifiedFind.
  [[nodiscard]] std::optional<std::string_view> find(RecordType type,
                                                     std::uint64_t key) const;

  /// find() plus the collision defense: recomputes both hashes of
  /// `material` and requires the payload's leading verify hash to match.
  /// On mismatch the record is quarantined (counted once) and nullopt is
  /// returned. The returned view EXCLUDES the leading verify hash.
  [[nodiscard]] std::optional<std::string_view> verifiedFind(
      RecordType type, std::string_view material);

  [[nodiscard]] const StoreStats& stats() const { return stats_; }
  [[nodiscard]] std::size_t byteSize() const { return byteSize_; }

 private:
  std::string image_;
  std::map<std::pair<std::uint32_t, std::uint64_t>, std::string_view>
      records_;
  StoreStats stats_;
  std::size_t byteSize_ = 0;
};

/// Renders a payload whose first field is the verify hash of `material`,
/// followed by `body`.
[[nodiscard]] std::string sealPayload(std::string_view material,
                                      std::string_view body);

}  // namespace ps::pdb

#endif  // PS_PDB_PDB_H
