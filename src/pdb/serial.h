#ifndef PS_PDB_SERIAL_H
#define PS_PDB_SERIAL_H

// The persistent program database's binary serialization primitives.
//
// All multi-byte values are written little-endian by explicit byte
// composition, so a store written on any host reads identically on any
// other. The Reader is fully bounds-checked and NEVER throws: any overrun
// or malformed length latches a sticky fail flag and every subsequent read
// returns a zero value. Deserializers therefore run to completion on
// arbitrary garbage and report one boolean at the end — the quarantine
// protocol's foundation.
//
// Header-only on purpose: lower layers (interproc, dependence) serialize
// their own types by including this file without taking a link-time
// dependency on the pdb store itself.

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

namespace ps::pdb {

class Writer {
 public:
  void u8(std::uint8_t v) { buf_.push_back(static_cast<char>(v)); }

  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      buf_.push_back(static_cast<char>((v >> (8 * i)) & 0xFFU));
    }
  }

  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      buf_.push_back(static_cast<char>((v >> (8 * i)) & 0xFFU));
    }
  }

  void i64(long long v) { u64(static_cast<std::uint64_t>(v)); }

  void f64(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, 8);
    u64(bits);
  }

  /// Length-prefixed string: u32 byte count + raw bytes.
  void str(std::string_view s) {
    u32(static_cast<std::uint32_t>(s.size()));
    buf_.append(s.data(), s.size());
  }

  [[nodiscard]] const std::string& data() const { return buf_; }
  [[nodiscard]] std::string take() { return std::move(buf_); }

 private:
  std::string buf_;
};

class Reader {
 public:
  explicit Reader(std::string_view data) : data_(data) {}

  std::uint8_t u8() {
    if (!need(1)) return 0;
    return static_cast<std::uint8_t>(data_[pos_++]);
  }

  std::uint32_t u32() {
    if (!need(4)) return 0;
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(
               static_cast<unsigned char>(data_[pos_ + i]))
           << (8 * i);
    }
    pos_ += 4;
    return v;
  }

  std::uint64_t u64() {
    if (!need(8)) return 0;
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(
               static_cast<unsigned char>(data_[pos_ + i]))
           << (8 * i);
    }
    pos_ += 8;
    return v;
  }

  long long i64() { return static_cast<long long>(u64()); }

  double f64() {
    std::uint64_t bits = u64();
    double v;
    std::memcpy(&v, &bits, 8);
    return v;
  }

  std::string str() {
    std::uint32_t n = u32();
    if (!need(n)) return {};
    std::string s(data_.substr(pos_, n));
    pos_ += n;
    return s;
  }

  /// Raw byte run without a length prefix (header magic).
  std::string bytes(std::size_t n) {
    if (!need(n)) return {};
    std::string s(data_.substr(pos_, n));
    pos_ += n;
    return s;
  }

  [[nodiscard]] bool ok() const { return !fail_; }
  [[nodiscard]] std::size_t pos() const { return pos_; }
  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }
  [[nodiscard]] bool atEnd() const { return pos_ == data_.size(); }
  void markFail() { fail_ = true; }

 private:
  bool need(std::size_t n) {
    if (fail_ || n > data_.size() - pos_) {
      fail_ = true;
      return false;
    }
    return true;
  }

  std::string_view data_;
  std::size_t pos_ = 0;
  bool fail_ = false;
};

}  // namespace ps::pdb

#endif  // PS_PDB_SERIAL_H
