#include "pdb/pdb.h"

#include "support/hash.h"

namespace ps::pdb {

namespace {

constexpr char kMagic[8] = {'P', 'S', 'P', 'D', 'B',
                            static_cast<char>(0xDB), '\r', '\n'};

// type + key + length before the payload, two checksums after it.
constexpr std::size_t kFramePre = 4 + 8 + 4;
constexpr std::size_t kFramePost = 8 + 4;

}  // namespace

std::string buildStamp() {
#if defined(__VERSION__)
  std::string compiler = __VERSION__;
#else
  std::string compiler = "unknown-compiler";
#endif
  return compiler + "|ptr" + std::to_string(sizeof(void*) * 8) + "|fmt" +
         std::to_string(kFormatVersion);
}

std::uint64_t contentKey(std::string_view material) {
  return support::xxh64(material, kKeySeed);
}

std::uint64_t verifyKey(std::string_view material) {
  return support::xxh64(material, kVerifySeed);
}

std::string sealPayload(std::string_view material, std::string_view body) {
  Writer w;
  w.u64(verifyKey(material));
  std::string out = w.take();
  out.append(body.data(), body.size());
  return out;
}

StoreWriter::StoreWriter() {
  Writer w;
  std::string out(kMagic, sizeof(kMagic));
  w.u32(kFormatVersion);
  w.u32(kEndianTag);
  w.str(buildStamp());
  out += w.take();
  buf_ = std::move(out);
}

void StoreWriter::add(RecordType type, std::uint64_t key,
                      std::string_view payload) {
  Writer w;
  w.u32(static_cast<std::uint32_t>(type));
  w.u64(key);
  w.str(payload);  // u32 length + bytes
  w.u64(support::xxh64(payload));
  w.u32(support::crc32(payload));
  buf_ += w.take();
}

StoreReader::StoreReader(std::string bytes)
    : image_(std::move(bytes)), byteSize_(image_.size()) {
  Reader r(image_);

  if (r.bytes(sizeof(kMagic)) != std::string_view(kMagic, sizeof(kMagic)) ||
      r.u32() != kFormatVersion || r.u32() != kEndianTag ||
      r.str() != buildStamp() || !r.ok()) {
    stats_.rejected = true;
    return;
  }

  while (!r.atEnd()) {
    if (r.remaining() < kFramePre + kFramePost) {
      // Trailing garbage too short to frame a record: truncation.
      ++stats_.quarantined;
      return;
    }
    const std::uint32_t type = r.u32();
    const std::uint64_t key = r.u64();
    const std::uint32_t len = r.u32();
    if (len > r.remaining() || r.remaining() - len < kFramePost) {
      // Corrupted length or truncated payload: nothing past this point can
      // be framed reliably.
      ++stats_.quarantined;
      return;
    }
    const std::size_t payloadPos = r.pos();
    std::string_view payload(image_.data() + payloadPos, len);
    r.bytes(len);
    const std::uint64_t wantX = r.u64();
    const std::uint32_t wantC = r.u32();
    if (!r.ok()) {
      ++stats_.quarantined;
      return;
    }
    if (support::xxh64(payload) != wantX || support::crc32(payload) != wantC) {
      // Payload/checksum damage confined to one frame: skip it, keep
      // scanning — the frame boundaries themselves were consistent.
      ++stats_.quarantined;
      continue;
    }
    records_[{type, key}] = payload;  // last write wins on duplicates
    ++stats_.records;
  }
}

std::optional<std::string_view> StoreReader::find(RecordType type,
                                                  std::uint64_t key) const {
  auto it = records_.find({static_cast<std::uint32_t>(type), key});
  if (it == records_.end()) return std::nullopt;
  return it->second;
}

std::optional<std::string_view> StoreReader::verifiedFind(
    RecordType type, std::string_view material) {
  auto payload = find(type, contentKey(material));
  if (!payload) return std::nullopt;
  Reader r(*payload);
  if (r.u64() != verifyKey(material) || !r.ok()) {
    ++stats_.quarantined;
    return std::nullopt;
  }
  return payload->substr(8);
}

}  // namespace ps::pdb
