// Corruption-recovery suite for the persistent program database.
//
// A store is written once from a cold analysis of the slab2d deck, then
// reopened through every injected fault the format defends against:
// truncation at fixed fractions, single-bit flips at fixed-seed offsets,
// a format-version bump, magic damage, and a simulated content-hash
// collision (two records' frames re-keyed against each other with VALID
// checksums, so only the in-payload verify hash can catch it).
//
// The invariant under every fault is the same: open succeeds, the
// resulting analysis state is bit-identical to a cold analysis, and the
// quarantine counters account for the damage. Corruption may cost time
// (recomputation), never correctness.

#include <gtest/gtest.h>

#include <cstdio>
#include <random>
#include <string>
#include <vector>

#include "ped/session.h"
#include "support/diagnostics.h"
#include "support/io.h"
#include "workloads/harness.h"
#include "workloads/workloads.h"

namespace ps::workloads {
namespace {

constexpr char kDeck[] = "slab2d";

struct Frame {
  std::size_t offset = 0;  // of the frame (type field)
  std::uint32_t type = 0;
  std::uint64_t key = 0;
  std::size_t payloadOffset = 0;
  std::uint32_t payloadLen = 0;
  std::size_t end = 0;  // one past the trailing crc
};

std::uint32_t rdU32(const std::string& b, std::size_t at) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(
             static_cast<unsigned char>(b[at + i]))
         << (8 * i);
  }
  return v;
}

std::uint64_t rdU64(const std::string& b, std::size_t at) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(
             static_cast<unsigned char>(b[at + i]))
         << (8 * i);
  }
  return v;
}

void wrU64(std::string* b, std::size_t at, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    (*b)[at + i] = static_cast<char>((v >> (8 * i)) & 0xFFU);
  }
}

/// Walk the store image: header end + every record frame. Mirrors the
/// format in src/pdb/pdb.h (magic[8], u32 version, u32 endian, str stamp,
/// then [u32 type][u64 key][u32 len][payload][u64 xxh][u32 crc]...).
std::vector<Frame> walkFrames(const std::string& image,
                              std::size_t* headerEnd) {
  const std::size_t stampLen = rdU32(image, 16);
  std::size_t at = 8 + 4 + 4 + 4 + stampLen;
  if (headerEnd) *headerEnd = at;
  std::vector<Frame> frames;
  while (at + 28 <= image.size()) {
    Frame f;
    f.offset = at;
    f.type = rdU32(image, at);
    f.key = rdU64(image, at + 4);
    f.payloadLen = rdU32(image, at + 12);
    f.payloadOffset = at + 16;
    f.end = f.payloadOffset + f.payloadLen + 12;
    if (f.end > image.size()) break;
    frames.push_back(f);
    at = f.end;
  }
  return frames;
}

struct Fixture {
  std::string source;
  std::string image;         // pristine store bytes
  std::string coldSnapshot;  // reference analysis state
  std::size_t procedures = 0;
};

const Fixture& fixture() {
  static const Fixture fx = [] {
    Fixture f;
    const Workload* w = byName(kDeck);
    EXPECT_NE(w, nullptr);
    f.source = w->source;
    auto cold = loadDeck(kDeck);
    EXPECT_NE(cold, nullptr);
    cold->analyzeParallel(1);
    f.coldSnapshot = analysisSnapshot(*cold);
    f.procedures = cold->procedureNames().size();
    const std::string path = std::string(kDeck) + ".corrupt.pspdb";
    EXPECT_TRUE(cold->savePdb(path));
    EXPECT_TRUE(ps::support::readFile(path, &f.image));
    std::remove(path.c_str());
    return f;
  }();
  return fx;
}

/// Write `image` to a scratch store, open warm at 2 threads, and require
/// the full invariant: success + snapshot equality. Returns the session
/// for counter checks.
std::unique_ptr<ped::Session> openImage(const std::string& image,
                                        const std::string& tag) {
  const std::string path = std::string(kDeck) + "." + tag + ".pspdb";
  EXPECT_TRUE(ps::support::writeFileAtomic(path, image));
  DiagnosticEngine diags;
  auto s = ped::Session::openWarm(fixture().source, path, diags, 2);
  std::remove(path.c_str());
  EXPECT_NE(s, nullptr) << tag;
  if (!s) return nullptr;
  EXPECT_FALSE(diags.hasErrors()) << tag;
  EXPECT_EQ(fixture().coldSnapshot, analysisSnapshot(*s))
      << tag << ": corruption changed analysis results";
  return s;
}

TEST(PdbPersistence, PristineRoundTripIsPureReuse) {
  auto s = openImage(fixture().image, "pristine");
  ASSERT_NE(s, nullptr);
  const ped::PdbStats& ps = s->pdbStats();
  EXPECT_FALSE(ps.storeRejected);
  EXPECT_EQ(ps.quarantined, 0u);
  EXPECT_EQ(ps.graphHits, fixture().procedures);
  EXPECT_EQ(ps.graphMisses, 0u);
  EXPECT_EQ(ps.summaryMisses, 0u);
  EXPECT_EQ(ps.testsRunLive, 0);
  EXPECT_EQ(ps.bytesRead, fixture().image.size());
}

TEST(PdbPersistence, MissingStoreRunsCold) {
  DiagnosticEngine diags;
  auto s = ped::Session::openWarm(fixture().source, "no-such-file.pspdb",
                                  diags, 2);
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(fixture().coldSnapshot, analysisSnapshot(*s));
  const ped::PdbStats& ps = s->pdbStats();
  EXPECT_TRUE(ps.storeRejected);
  EXPECT_EQ(ps.graphHits, 0u);
  EXPECT_EQ(ps.graphMisses, fixture().procedures);
}

TEST(PdbPersistence, TruncationNeverCrashesAndRecomputes) {
  const std::string& image = fixture().image;
  const std::vector<std::size_t> cuts = {
      0, 3, image.size() / 8, image.size() / 3, image.size() / 2,
      (image.size() * 7) / 8, image.size() - 1};
  for (std::size_t cut : cuts) {
    auto s = openImage(image.substr(0, cut),
                       "trunc" + std::to_string(cut));
    ASSERT_NE(s, nullptr);
    const ped::PdbStats& ps = s->pdbStats();
    // Damage must be visible somewhere: a header too short to parse
    // rejects the store; a mid-record cut quarantines the remainder and
    // misses the lost records.
    EXPECT_TRUE(ps.storeRejected || ps.quarantined > 0 ||
                ps.graphMisses + ps.summaryMisses > 0)
        << "cut at " << cut;
  }
}

TEST(PdbPersistence, SingleBitFlipsAreQuarantinedOrMissed) {
  const std::string& image = fixture().image;
  const ped::PdbStats pristine = [&] {
    auto s = openImage(image, "flipref");
    return s ? s->pdbStats() : ped::PdbStats{};
  }();
  std::mt19937 rng(0xB17F11Au);
  for (int trial = 0; trial < 24; ++trial) {
    std::string mutated = image;
    const std::size_t byteAt = std::uniform_int_distribution<std::size_t>(
        0, mutated.size() - 1)(rng);
    const int bit = std::uniform_int_distribution<int>(0, 7)(rng);
    mutated[byteAt] = static_cast<char>(
        static_cast<unsigned char>(mutated[byteAt]) ^ (1U << bit));
    auto s = openImage(mutated, "flip" + std::to_string(trial));
    ASSERT_NE(s, nullptr);
    const ped::PdbStats& ps = s->pdbStats();
    // Wherever the bit landed — header (reject), frame key (probe miss),
    // payload or checksum (quarantine), memo record (prewarm loss) — the
    // damage shows up in exactly these counters, and never in results.
    EXPECT_TRUE(ps.storeRejected || ps.quarantined > 0 ||
                ps.graphMisses + ps.summaryMisses > 0 ||
                ps.memoPrewarmed != pristine.memoPrewarmed)
        << "flip at byte " << byteAt << " bit " << bit;
  }
}

TEST(PdbPersistence, VersionSkewRejectsWholeStore) {
  std::string mutated = fixture().image;
  mutated[8] = static_cast<char>(static_cast<unsigned char>(mutated[8]) + 1);
  auto s = openImage(mutated, "verbump");
  ASSERT_NE(s, nullptr);
  const ped::PdbStats& ps = s->pdbStats();
  EXPECT_TRUE(ps.storeRejected);
  EXPECT_EQ(ps.graphHits, 0u);
  EXPECT_EQ(ps.graphMisses, fixture().procedures);
}

TEST(PdbPersistence, MagicDamageRejectsWholeStore) {
  std::string mutated = fixture().image;
  mutated[0] = 'X';
  auto s = openImage(mutated, "magic");
  ASSERT_NE(s, nullptr);
  EXPECT_TRUE(s->pdbStats().storeRejected);
}

TEST(PdbPersistence, KeyCollisionIsCaughtByVerifyHash) {
  // Simulate a content-hash collision: re-key record A's frame with record
  // B's key. The frame checksums only cover the payload, so the forged
  // frame is accepted by the integrity layer — a session probing B's key
  // now receives A's payload, exactly as if xxh64 had collided. The
  // in-payload verify hash (independent seed) must catch it.
  std::string mutated = fixture().image;
  const auto frames = walkFrames(mutated, nullptr);
  std::vector<const Frame*> graphs;
  for (const auto& f : frames) {
    if (f.type == 2) graphs.push_back(&f);  // RecordType::Graph
  }
  ASSERT_GE(graphs.size(), 2u) << "need two graph records to collide";
  wrU64(&mutated, graphs[0]->offset + 4, graphs[1]->key);
  wrU64(&mutated, graphs[1]->offset + 4, rdU64(fixture().image,
                                               graphs[0]->offset + 4));
  auto s = openImage(mutated, "collide");
  ASSERT_NE(s, nullptr);
  const ped::PdbStats& ps = s->pdbStats();
  EXPECT_FALSE(ps.storeRejected);
  EXPECT_GE(ps.quarantined, 2u);
  EXPECT_GE(ps.graphMisses, 2u);
}

}  // namespace
}  // namespace ps::workloads
