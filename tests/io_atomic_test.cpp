// The torn-save race and the silent I/O failures, pinned.
//
// The original writeFileAtomic rendered every writer into the SAME
// `path + ".tmp"` scratch file: two concurrent savers interleaved their
// writes and the rename published a spliced image — a torn store the next
// session quarantined wholesale. The fix gives every writer a unique temp
// name (pid + process-wide counter, same directory so rename stays atomic)
// and fsyncs before publishing. These tests hammer one path from many
// threads and assert the survivor is always exactly ONE writer's complete
// image, all the way up to a real multi-session concurrent savePdb whose
// surviving store must open clean with zero quarantined frames.
//
// The second half pins the structured failure reports: savePdb/openWarm
// used to fold every I/O failure into a bare `false`/cold-start; now the
// failing syscall stage and errno surface through Session::pdbStats().

#include <gtest/gtest.h>

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "pdb/pdb.h"
#include "ped/session.h"
#include "support/diagnostics.h"
#include "support/io.h"
#include "workloads/harness.h"
#include "workloads/workloads.h"

namespace ps {
namespace {

class ScopedFile {
 public:
  explicit ScopedFile(std::string path) : path_(std::move(path)) {}
  ~ScopedFile() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

TEST(AtomicWrite, RoundTripAndStages) {
  ScopedFile f("io_atomic.rt.bin");
  std::string payload = "hello\0world";
  payload += std::string(4096, '\xab');
  support::IoStatus w = support::writeFileAtomicEx(f.path(), payload);
  ASSERT_TRUE(w.ok()) << w.str();
  std::string back;
  support::IoStatus r = support::readFileEx(f.path(), &back);
  ASSERT_TRUE(r.ok()) << r.str();
  EXPECT_EQ(back, payload);
}

TEST(AtomicWrite, MissingFileReportsOpenStage) {
  std::string out = "untouched";
  support::IoStatus r = support::readFileEx("io_atomic.does.not.exist", &out);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.stage, "open");
  EXPECT_EQ(r.error, ENOENT);
  EXPECT_EQ(out, "untouched");  // failure leaves the output untouched
}

TEST(AtomicWrite, FailedWriteNeverClobbersAndNamesStage) {
  ScopedFile parent("io_atomic.notadir");
  ASSERT_TRUE(support::writeFileAtomic(parent.path(), "i am a file"));
  // The target's parent is a regular file: creating the temp fails with
  // ENOTDIR (this also works when the suite runs as root, which ignores
  // permission bits).
  const std::string target = parent.path() + "/store.bin";
  support::IoStatus w = support::writeFileAtomicEx(target, "data");
  EXPECT_FALSE(w.ok());
  EXPECT_EQ(w.stage, "create");
  EXPECT_EQ(w.error, ENOTDIR);
  std::string back;
  ASSERT_TRUE(support::readFile(parent.path(), &back));
  EXPECT_EQ(back, "i am a file");  // the existing file survived untouched
}

// The race itself: many threads write distinct payloads to ONE path. At
// every probe and at the end, the file must be exactly one payload —
// never a splice of two. With the old shared ".tmp" scratch name this
// fails in a handful of iterations (writers truncate each other's
// half-written temp and the rename publishes the wreckage).
TEST(AtomicWrite, ConcurrentWritersNeverTear) {
  ScopedFile f("io_atomic.race.bin");
  constexpr int kThreads = 8;
  constexpr int kIters = 50;
  // Payloads are distinguishable by their fill byte and all of one length,
  // crossing several write(2)-sized chunks.
  const std::size_t kLen = 1 << 16;
  auto payloadOf = [&](int t) {
    return std::string(kLen, static_cast<char>('A' + t));
  };
  std::atomic<int> torn{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      const std::string mine = payloadOf(t);
      for (int i = 0; i < kIters; ++i) {
        support::IoStatus w = support::writeFileAtomicEx(f.path(), mine);
        if (!w.ok()) {
          ++torn;  // no failure mode is acceptable on a writable dir
          continue;
        }
        std::string back;
        if (!support::readFile(f.path(), &back)) {
          ++torn;
          continue;
        }
        // Whichever writer won, the image must be complete and uniform.
        if (back.size() != kLen ||
            back.find_first_not_of(back[0]) != std::string::npos) {
          ++torn;
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(torn.load(), 0);
}

// The same race at full stack depth: N threads repeatedly savePdb distinct
// session states over one store path. Every probe in between and the final
// survivor must be a store that opens clean — correct framing, zero
// quarantined frames — and warm-starts a session.
TEST(AtomicWrite, ConcurrentSavePdbSurvivorOpensClean) {
  const workloads::Workload* w = workloads::byName("slab2d");
  ASSERT_NE(w, nullptr);
  ScopedFile store("io_atomic.slab2d.pspdb");

  constexpr int kThreads = 4;
  constexpr int kIters = 8;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      // Each thread saves a DIFFERENT analysis state (its own assertion),
      // so a torn splice of two saves cannot masquerade as either one.
      auto s = workloads::loadDeck("slab2d");
      if (!s) {
        ++failures;
        return;
      }
      s->addAssertion("ASSERT RANGE (QSVAR" + std::to_string(t) +
                      ", 1, 10)");
      s->analyzeParallel(1);
      for (int i = 0; i < kIters; ++i) {
        if (!s->savePdb(store.path())) {
          ++failures;
          continue;
        }
        std::string image;
        if (!support::readFile(store.path(), &image)) {
          ++failures;
          continue;
        }
        pdb::StoreReader reader(std::move(image));
        if (reader.stats().rejected || reader.stats().quarantined != 0) {
          ++failures;
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);

  // The survivor warm-starts a real session with nothing quarantined.
  DiagnosticEngine diags;
  auto warm = ped::Session::openWarm(w->source, store.path(), diags, 2);
  ASSERT_NE(warm, nullptr);
  EXPECT_FALSE(warm->pdbStats().storeRejected);
  EXPECT_EQ(warm->pdbStats().quarantined, 0u);
  EXPECT_TRUE(warm->pdbStats().ioFailures.empty());
}

TEST(IoFailureReports, SavePdbIntoNonDirectoryIsStructured) {
  ScopedFile parent("io_atomic.savedir");
  ASSERT_TRUE(support::writeFileAtomic(parent.path(), "file, not dir"));
  auto s = workloads::loadDeck("slab2d");
  ASSERT_NE(s, nullptr);
  s->analyzeParallel(1);
  EXPECT_FALSE(s->savePdb(parent.path() + "/store.pspdb"));
  const ped::PdbStats& ps = s->pdbStats();
  ASSERT_EQ(ps.ioFailures.size(), 1u);
  EXPECT_EQ(ps.ioFailures[0].operation, "savePdb");
  // The report names the failing syscall stage and the errno text.
  EXPECT_NE(ps.ioFailures[0].detail.find("create"), std::string::npos)
      << ps.ioFailures[0].detail;
  // And it renders through the stats line.
  EXPECT_NE(ps.str().find("io failure"), std::string::npos);
}

TEST(IoFailureReports, OpenWarmUnreadableStoreIsStructuredAndCold) {
  const workloads::Workload* w = workloads::byName("slab2d");
  ASSERT_NE(w, nullptr);
  ScopedFile parent("io_atomic.opendir");
  ASSERT_TRUE(support::writeFileAtomic(parent.path(), "file, not dir"));

  DiagnosticEngine diags;
  auto s = ped::Session::openWarm(w->source, parent.path() + "/x.pspdb",
                                  diags, 1);
  ASSERT_NE(s, nullptr);  // the session still opens — cold
  EXPECT_TRUE(s->pdbStats().storeRejected);
  ASSERT_EQ(s->pdbStats().ioFailures.size(), 1u);
  EXPECT_EQ(s->pdbStats().ioFailures[0].operation, "openWarm");

  // A merely MISSING store stays silent: that is the normal first run.
  DiagnosticEngine diags2;
  auto cold = ped::Session::openWarm(w->source, "io_atomic.no.such.pspdb",
                                     diags2, 1);
  ASSERT_NE(cold, nullptr);
  EXPECT_TRUE(cold->pdbStats().storeRejected);
  EXPECT_TRUE(cold->pdbStats().ioFailures.empty());
}

}  // namespace
}  // namespace ps
