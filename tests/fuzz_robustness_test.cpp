// Fuzz / fault-injection harness for the transactional edit engine.
//
// The paper's power-steering claim is a robustness claim: whatever the user
// feeds the editor — garbage decks, mid-flight transformation failures,
// hostile edits — the system must respond with diagnostics, never a crash
// and never a silently corrupted program database. This harness mutates the
// eight workload sources with a fixed-seed generator and drives
// load -> analyze -> transform -> edit -> rollback cycles, asserting after
// every step that the invariant auditor finds nothing.
//
// Iteration count: PS_FUZZ_ITERS overrides the default (520) so CI can run
// a quick smoke pass and a nightly can run longer.

#include <gtest/gtest.h>

#include <cstdlib>
#include <random>
#include <string>
#include <vector>

#include "fortran/pretty.h"
#include "ped/session.h"
#include "support/audit.h"
#include "support/diagnostics.h"
#include "workloads/workloads.h"

namespace ps {
namespace {

int fuzzIterations() {
  if (const char* env = std::getenv("PS_FUZZ_ITERS")) {
    int n = std::atoi(env);
    if (n > 0) return n;
  }
  return 520;
}

// PS_FUZZ_PARALLEL=<n> (n > 0) routes the harness's whole-program analyses
// through the task-DAG engine with n worker threads, so the mutated-deck
// corpus also hammers the parallel path. Unset/0 keeps the lazy sequential
// analysis this harness originally exercised.
int fuzzParallelThreads() {
  if (const char* env = std::getenv("PS_FUZZ_PARALLEL")) {
    int n = std::atoi(env);
    if (n > 0) return n;
  }
  return 0;
}

void maybeParallelAnalyze(ped::Session& s) {
  if (int n = fuzzParallelThreads()) (void)s.analyzeParallel(n);
}

// PS_VALIDATE=1 runs a dynamic-validation pass after each analyzed cycle:
// the traced interpreter run, the witness matcher and any auto-restores
// must hold up on mutated decks too — diagnostics or clean verdicts,
// never a crash, never an audit violation.
bool fuzzValidate() {
  if (const char* env = std::getenv("PS_VALIDATE")) {
    return std::atoi(env) > 0;
  }
  return false;
}

void maybeValidate(ped::Session& s) {
  if (!fuzzValidate()) return;
  ped::Session::ValidationOptions opts;
  opts.budget.maxEvents = 200'000;   // keep the fuzz corpus fast
  opts.budget.maxSteps = 2'000'000;
  opts.budget.maxRelativeChecks = 2;
  validate::ValidationReport rep = s.validateDeletions(opts);
  // ran == false is fine (mutated decks crash); silence is what's banned.
  if (!rep.ran) EXPECT_FALSE(rep.error.empty());
}

// ---------------------------------------------------------------------------
// Source mutators. Each takes the rng and returns a mutated copy; all are
// byte-level so they can produce every flavor of malformed fixed-form deck:
// truncated statements, corrupted continuation columns, spliced tokens,
// garbage subscripts.
// ---------------------------------------------------------------------------

using Rng = std::mt19937;

std::size_t pick(Rng& rng, std::size_t n) {
  return n == 0 ? 0 : std::uniform_int_distribution<std::size_t>(0, n - 1)(rng);
}

std::string truncate(std::string s, Rng& rng) {
  if (s.empty()) return s;
  s.resize(pick(rng, s.size()));
  return s;
}

std::string spliceTokens(std::string s, Rng& rng) {
  if (s.size() < 8) return s;
  std::size_t from = pick(rng, s.size() - 4);
  std::size_t len = 1 + pick(rng, 16);
  if (from + len > s.size()) len = s.size() - from;
  std::size_t to = pick(rng, s.size());
  s.insert(to, s.substr(from, len));
  return s;
}

std::string garbageColumns(std::string s, Rng& rng) {
  static const char pool[] = "()=+-*/,.$&0123ABCXYZ \t";
  std::size_t start = pick(rng, s.size());
  std::size_t len = 1 + pick(rng, 24);
  for (std::size_t i = start; i < s.size() && i < start + len; ++i) {
    if (s[i] == '\n') continue;  // keep the card structure recognizable
    s[i] = pool[pick(rng, sizeof(pool) - 2)];
  }
  return s;
}

std::vector<std::string> splitLines(const std::string& s) {
  std::vector<std::string> lines;
  std::size_t start = 0;
  while (start <= s.size()) {
    std::size_t end = s.find('\n', start);
    if (end == std::string::npos) {
      if (start < s.size()) lines.push_back(s.substr(start));
      break;
    }
    lines.push_back(s.substr(start, end - start));
    start = end + 1;
  }
  return lines;
}

std::string joinLines(const std::vector<std::string>& lines) {
  std::string out;
  for (const auto& l : lines) {
    out += l;
    out += '\n';
  }
  return out;
}

std::string duplicateLine(std::string s, Rng& rng) {
  auto lines = splitLines(s);
  if (lines.empty()) return s;
  std::size_t i = pick(rng, lines.size());
  lines.insert(lines.begin() + static_cast<long>(i), lines[i]);
  return joinLines(lines);
}

std::string deleteLine(std::string s, Rng& rng) {
  auto lines = splitLines(s);
  if (lines.size() < 2) return s;
  lines.erase(lines.begin() + static_cast<long>(pick(rng, lines.size())));
  return joinLines(lines);
}

/// Corrupt a continuation card: make column 6 of a random line non-blank so
/// the line glues onto its predecessor, or blank out a real continuation.
std::string corruptContinuation(std::string s, Rng& rng) {
  auto lines = splitLines(s);
  if (lines.empty()) return s;
  std::string& l = lines[pick(rng, lines.size())];
  while (l.size() < 6) l += ' ';
  l[5] = (l[5] == ' ') ? '1' : ' ';
  return joinLines(lines);
}

/// Stuff garbage inside a parenthesized region — subscript torture.
std::string garbageSubscript(std::string s, Rng& rng) {
  std::vector<std::size_t> parens;
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '(') parens.push_back(i);
  }
  if (parens.empty()) return s;
  static const char* junk[] = {"I+", "**", "J,K,", "(", "))", "IT(", "-",
                               "1E", ",,"};
  s.insert(parens[pick(rng, parens.size())] + 1,
           junk[pick(rng, sizeof(junk) / sizeof(junk[0]))]);
  return s;
}

std::string mutateSource(const std::string& original, Rng& rng) {
  std::string s = original;
  int rounds = 1 + static_cast<int>(pick(rng, 3));
  for (int i = 0; i < rounds; ++i) {
    switch (pick(rng, 7)) {
      case 0: s = truncate(std::move(s), rng); break;
      case 1: s = spliceTokens(std::move(s), rng); break;
      case 2: s = garbageColumns(std::move(s), rng); break;
      case 3: s = duplicateLine(std::move(s), rng); break;
      case 4: s = deleteLine(std::move(s), rng); break;
      case 5: s = corruptContinuation(std::move(s), rng); break;
      case 6: s = garbageSubscript(std::move(s), rng); break;
    }
  }
  return s;
}

// ---------------------------------------------------------------------------
// Phase 1: mutated-source loads. The parser must recover (diagnostics plus
// a usable partial program) and whatever it builds must satisfy every
// structural invariant; a deep round-trip audit runs on a sample.
// ---------------------------------------------------------------------------

TEST(FuzzRobustness, MutatedSourceLoadsNeverCrashOrCorrupt) {
  const auto& programs = workloads::all();
  ASSERT_FALSE(programs.empty());
  Rng rng(20260806u);
  const int iters = fuzzIterations();

  int loaded = 0, rejected = 0, deepAudits = 0;
  for (int i = 0; i < iters; ++i) {
    const auto& w = programs[static_cast<std::size_t>(i) % programs.size()];
    std::string mutated = mutateSource(w.source, rng);

    DiagnosticEngine diags;
    auto session = ped::Session::load(mutated, diags);
    if (!session) {
      ++rejected;  // nothing parsed at all: diagnostics-only failure
      continue;
    }
    ++loaded;

    const bool deep = (i % 8) == 0;
    if (deep) ++deepAudits;
    audit::Report rep = session->auditNow(deep);
    EXPECT_TRUE(rep.ok()) << "iteration " << i << " (" << w.name
                          << "): " << rep.str();

    // Exercise the analysis stack on a sample: progressive disclosure over
    // a mutated deck must still produce a coherent model + graph.
    if (i % 4 == 0) {
      maybeParallelAnalyze(*session);
      (void)session->loops();
      audit::Report after = session->auditNow(false);
      EXPECT_TRUE(after.ok())
          << "post-analysis audit, iteration " << i << " (" << w.name
          << "): " << after.str();
      if (i % 16 == 0) {
        maybeValidate(*session);
        audit::Report postValidate = session->auditNow(false);
        EXPECT_TRUE(postValidate.ok())
            << "post-validation audit, iteration " << i << " (" << w.name
            << "): " << postValidate.str();
      }
    }
  }
  // The mutators must actually produce both outcomes, or they are too tame
  // (or the parser rejects everything and the test proves nothing).
  EXPECT_GT(loaded, 0);
  EXPECT_GT(deepAudits, 0);
  SUCCEED() << loaded << " loaded, " << rejected << " rejected";
}

// ---------------------------------------------------------------------------
// Phase 2: fault-injected transform/edit/rollback cycles on clean programs.
// ---------------------------------------------------------------------------

TEST(FuzzRobustness, FaultInjectedTransformCyclesRollBackCleanly) {
  Rng rng(97531u);
  const auto& programs = workloads::all();
  const int cycles = std::max(8, fuzzIterations() / 16);

  for (int i = 0; i < cycles; ++i) {
    const auto& w = programs[static_cast<std::size_t>(i) % programs.size()];
    DiagnosticEngine diags;
    auto session = ped::Session::load(w.source, diags);
    ASSERT_NE(session, nullptr) << w.name;

    // Materialize the analysis and pick a loop to torture.
    maybeParallelAnalyze(*session);
    auto loops = session->loops();
    if (loops.empty()) continue;
    auto loopId = loops[pick(rng, loops.size())].id;

    std::string before = fortran::printProgram(session->program());

    // A fault-injected apply must fail, roll back, and leave the program
    // byte-identical.
    session->injectFaultOnce(pick(rng, 2) == 0 ? ped::Fault::MidApply
                                               : ped::Fault::CorruptState);
    transform::Target t;
    t.loop = loopId;
    std::string error;
    bool ok = session->applyTransformation("Loop Reversal", t, &error);
    if (!ok) {
      EXPECT_EQ(fortran::printProgram(session->program()), before)
          << "cycle " << i << " (" << w.name << "): rollback not clean";
      ASSERT_FALSE(session->failures().empty());
      EXPECT_TRUE(session->failures().back().rolledBack);
    }
    EXPECT_TRUE(session->auditNow(true).ok()) << "cycle " << i;

    // Garbage edits are rejected before mutation; valid edits commit and
    // audit clean.
    std::string snapshot = fortran::printProgram(session->program());
    EXPECT_FALSE(session->editStatement(loopId, ")))garbage(((") );
    EXPECT_EQ(fortran::printProgram(session->program()), snapshot);

    auto rows = session->sourcePane();
    if (!rows.empty()) {
      auto stmt = rows[pick(rng, rows.size())].stmt;
      (void)session->insertStatementAfter(stmt, "CONTINUE");
    }
    audit::Report rep = session->auditNow(true);
    EXPECT_TRUE(rep.ok()) << "cycle " << i << " (" << w.name
                          << "): " << rep.str();
  }
}

// ---------------------------------------------------------------------------
// Phase 3: degradation under starvation budgets. Tiny budgets must coarsen
// answers (degraded, conservative), never crash, and be fully reported.
// ---------------------------------------------------------------------------

TEST(FuzzRobustness, StarvationBudgetsDegradeConservatively) {
  Rng rng(424242u);
  const auto& programs = workloads::all();
  for (std::size_t i = 0; i < programs.size(); ++i) {
    DiagnosticEngine diags;
    auto session = ped::Session::load(programs[i].source, diags);
    ASSERT_NE(session, nullptr) << programs[i].name;
    (void)session->loops();  // materialize under the default budget

    dep::AnalysisBudget starved;
    starved.fmMaxConstraints = 1 + pick(rng, 4);
    starved.fmMaxEliminations = static_cast<int>(pick(rng, 2));
    starved.maxSubscriptNodes = 1 + pick(rng, 3);
    starved.maxSymbolicRelations = pick(rng, 2);
    session->setAnalysisBudget(starved);

    (void)session->loops();
    EXPECT_TRUE(session->auditNow(false).ok()) << programs[i].name;
    // Whatever degraded must be visible in the report; and a degraded build
    // never invents a *disproof* (checked structurally: report consistent).
    auto report = session->degradationReport();
    for (const auto& e : report.edges) {
      EXPECT_FALSE(e.procedure.empty());
    }
  }
}

}  // namespace
}  // namespace ps
