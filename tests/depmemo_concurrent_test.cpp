#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "dependence/testsuite.h"

namespace ps::dep {
namespace {

// The memo's generation protocol: a client captures g = generation() when a
// build starts, tags every insert with g, and a lookup tagged g only sees
// entries stamped g. These tests hammer that contract from many threads
// while invalidateAll() bumps the generation mid-flight.

LevelResult stamped(std::uint64_t gen) {
  LevelResult r;
  r.answer = DepAnswer::NoDependence;
  // Encode the writer's captured generation in the payload so a reader can
  // detect a cross-generation leak: seeing distance != its own captured
  // generation would mean a stale entry survived an invalidation.
  r.distance = static_cast<long long>(gen);
  return r;
}

TEST(DepMemoConcurrent, NoStaleHitsAcrossGenerations) {
  DepMemo memo;
  constexpr int kThreads = 8;
  constexpr int kKeys = 32;  // overlapping keys, 2 shards' worth of contention
  constexpr int kItersPerThread = 4000;
  std::atomic<bool> stop{false};
  std::atomic<long long> staleHits{0};
  std::atomic<long long> hits{0};

  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < kItersPerThread; ++i) {
        const std::string key = "k" + std::to_string((i * 7 + t) % kKeys);
        // Capture-once, exactly as DependenceTester does at construction.
        const std::uint64_t gen = memo.generation();
        if (auto hit = memo.lookup(key, gen)) {
          ++hits;
          if (hit->distance != static_cast<long long>(gen)) ++staleHits;
        } else {
          memo.insert(key, stamped(gen), gen);
        }
      }
    });
  }
  // A dedicated invalidator bumps the generation continuously while the
  // workers read and write.
  std::thread invalidator([&] {
    while (!stop.load(std::memory_order_acquire)) {
      memo.invalidateAll();
      std::this_thread::yield();
    }
  });

  for (auto& w : workers) w.join();
  stop.store(true, std::memory_order_release);
  invalidator.join();

  EXPECT_EQ(staleHits.load(), 0)
      << "a lookup returned an entry inserted under a different generation";
  // With only 32 keys and 32k probes, plenty of lookups must have hit
  // within a generation window — otherwise the test exercised nothing.
  EXPECT_GT(hits.load(), 0);
}

TEST(DepMemoConcurrent, ConcurrentInsertsOfOverlappingKeysAllVisible) {
  DepMemo memo;
  constexpr int kThreads = 8;
  constexpr int kKeys = 256;
  const std::uint64_t gen = memo.generation();

  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&] {
      for (int k = 0; k < kKeys; ++k) {
        memo.insert("key" + std::to_string(k), stamped(gen), gen);
      }
    });
  }
  for (auto& w : workers) w.join();

  EXPECT_EQ(memo.size(), static_cast<std::size_t>(kKeys));
  for (int k = 0; k < kKeys; ++k) {
    auto hit = memo.lookup("key" + std::to_string(k), gen);
    ASSERT_TRUE(hit.has_value()) << k;
    EXPECT_EQ(hit->answer, DepAnswer::NoDependence);
    EXPECT_EQ(hit->distance, static_cast<long long>(gen));
  }
}

TEST(DepMemoConcurrent, InvalidateAllHidesEveryEarlierEntry) {
  DepMemo memo;
  const std::uint64_t g0 = memo.generation();
  for (int k = 0; k < 64; ++k) {
    memo.insert("key" + std::to_string(k), stamped(g0), g0);
  }
  memo.invalidateAll();
  const std::uint64_t g1 = memo.generation();
  ASSERT_NE(g0, g1);
  for (int k = 0; k < 64; ++k) {
    EXPECT_FALSE(memo.lookup("key" + std::to_string(k), g1).has_value()) << k;
    // The old generation's view is still intact for a client that captured
    // g0 before the bump — exactly why mid-build invalidation is safe.
    EXPECT_TRUE(memo.lookup("key" + std::to_string(k), g0).has_value()) << k;
  }
}

TEST(DepMemoConcurrent, ShardingSpreadsKeys) {
  // Not a correctness requirement, but if every key landed in one shard the
  // striped locking would be pointless; guard against a degenerate hash.
  EXPECT_GE(DepMemo::shardCount(), 8u);
}

}  // namespace
}  // namespace ps::dep
