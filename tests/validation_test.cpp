// Dynamic dependence validation suite.
//
// The paper's workshop experience is that users deleted dependences that
// were actually carried, and PED trusted them. This suite asserts the
// trust gap is closed: a deletion the trace refutes is auto-restored with
// a provenance-naming failure report, a deletion the trace confirms safe
// STAYS deleted with its evidence attached, and everything the pass
// cannot check degrades to an explicit unvalidated tag — on all eight
// decks, byte-identically at 1/2/4/8 analysis threads, and across the
// persistent program database round trip.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "interp/machine.h"
#include "ped/session.h"
#include "support/diagnostics.h"
#include "validate/validate.h"
#include "workloads/harness.h"
#include "workloads/workloads.h"

namespace ps::workloads {
namespace {

class ScopedFile {
 public:
  explicit ScopedFile(std::string path) : path_(std::move(path)) {}
  ~ScopedFile() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

// A loop whose dependence on A is real only when the runtime value of K
// makes the write range overlap the read range. Analysis cannot know K, so
// the edge is Pending — exactly the kind of edge workshop users deleted.
constexpr char kRuntimeDep[] =
    "      PROGRAM RTDEP\n"
    "      DIMENSION A(200)\n"
    "      READ *, K\n"
    "      DO 10 I = 1, 50\n"
    "        A(I+K) = A(I) + 1.0\n"
    "10    CONTINUE\n"
    "      PRINT *, A(1)\n"
    "      END\n";

// Same shape, but the array is too small: running it traps out of bounds,
// so nothing dynamic can be concluded about any deletion.
constexpr char kCrashing[] =
    "      PROGRAM CRASH\n"
    "      DIMENSION A(10)\n"
    "      READ *, K\n"
    "      DO 10 I = 1, 50\n"
    "        A(I+K) = A(I) + 1.0\n"
    "10    CONTINUE\n"
    "      END\n";

// A first-order recurrence hidden behind a call: the carried dependence is
// an interprocedural summary edge the trace matcher cannot attribute, so
// only relative execution can refute its deletion.
constexpr char kInterprocRecurrence[] =
    "      PROGRAM IPREC\n"
    "      DIMENSION A(100)\n"
    "      COMMON /BLK/ A\n"
    "      A(1) = 1.0\n"
    "      DO 10 I = 2, 50\n"
    "        CALL STEP(I)\n"
    "10    CONTINUE\n"
    "      PRINT *, A(50)\n"
    "      END\n"
    "      SUBROUTINE STEP(I)\n"
    "      DIMENSION A(100)\n"
    "      COMMON /BLK/ A\n"
    "      A(I) = A(I-1) + 1.0\n"
    "      END\n";

std::unique_ptr<ped::Session> loadSource(const char* src,
                                         const std::string& deck) {
  DiagnosticEngine diags;
  auto s = ped::Session::load(src, diags);
  if (s) s->setDeckName(deck);
  return s;
}

// The Rejected edges of one procedure, by id.
std::vector<const dep::Dependence*> rejectedEdges(ped::Session& s,
                                                  const std::string& proc) {
  std::vector<const dep::Dependence*> out;
  EXPECT_TRUE(s.selectProcedure(proc));
  for (const dep::Dependence& d : s.workspace().graph->all()) {
    if (d.mark == dep::DepMark::Rejected) out.push_back(&d);
  }
  return out;
}

// ---------------------------------------------------------------------------
// Interpreter diagnostics carry statement ids (trace mode prerequisites).
// ---------------------------------------------------------------------------

TEST(InterpDiagnostics, OutOfBoundsNamesTheFaultingStatement) {
  auto s = loadSource(kCrashing, "crash");
  ASSERT_NE(s, nullptr);
  interp::RunOptions ro;
  ro.input = {0.0};  // K = 0: A(I) with I up to 50 overruns A(10)
  interp::RunResult r = s->profile(ro);
  ASSERT_FALSE(r.ok);
  EXPECT_NE(r.errorStmt, fortran::kInvalidStmt);
  // The faulting statement must be one the program actually executed.
  EXPECT_TRUE(r.stmtCounts.count(r.errorStmt))
      << "errorStmt " << r.errorStmt << " never executed";
}

TEST(InterpDiagnostics, TraceRecordsEventsAndUninitializedReads) {
  constexpr char kUninit[] =
      "      PROGRAM UREAD\n"
      "      DIMENSION A(10)\n"
      "      S = A(3) + 1.0\n"
      "      PRINT *, S\n"
      "      END\n";
  auto s = loadSource(kUninit, "uninit");
  ASSERT_NE(s, nullptr);
  interp::Trace trace;
  interp::RunOptions ro;
  ro.trace = &trace;
  interp::RunResult r = s->profile(ro);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_TRUE(trace.complete());
  EXPECT_GT(trace.events.size(), 0u);
  ASSERT_GT(trace.uninitReadCount, 0u);
  EXPECT_EQ(trace.uninitReads[0].variable, "A");
  EXPECT_NE(trace.uninitReads[0].stmt, fortran::kInvalidStmt);
}

TEST(InterpDiagnostics, TracedRunIsObservationallyIdentical) {
  for (const Workload& w : all()) {
    auto s = loadDeck(w.name);
    ASSERT_NE(s, nullptr) << w.name;
    interp::RunResult plain = s->profile({});
    interp::Trace trace;
    interp::RunOptions ro;
    ro.trace = &trace;
    interp::RunResult traced = s->profile(ro);
    ASSERT_EQ(plain.ok, traced.ok) << w.name;
    EXPECT_TRUE(plain.outputEquals(traced)) << w.name;
    EXPECT_EQ(plain.steps, traced.steps) << w.name;
    EXPECT_GT(trace.events.size(), 0u) << w.name;
  }
}

// ---------------------------------------------------------------------------
// Verdicts on the runtime-dependent loop.
// ---------------------------------------------------------------------------

// Reject every pending carried edge on A in RTDEP's loop; returns how many.
int deleteLoopEdges(ped::Session& s) {
  auto loops = s.loops();
  EXPECT_FALSE(loops.empty());
  EXPECT_TRUE(s.selectLoop(loops[0].id));
  ped::Session::DependenceFilter f;
  f.variable = "A";
  f.mark = dep::DepMark::Pending;
  return s.markAllMatching(f, dep::DepMark::Rejected, "believed independent");
}

TEST(ValidateDeletions, WitnessRefutesAndAutoRestoresUnsoundDeletion) {
  auto s = loadSource(kRuntimeDep, "rtdep");
  ASSERT_NE(s, nullptr);
  ASSERT_GT(deleteLoopEdges(*s), 0);
  const std::size_t rejectedBefore = rejectedEdges(*s, "RTDEP").size();
  ASSERT_GT(rejectedBefore, 0u);

  ped::Session::ValidationOptions opts;
  opts.run.input = {1.0};  // K = 1: the recurrence is real
  validate::ValidationReport rep = s->validateDeletions(opts);
  ASSERT_TRUE(rep.ran) << rep.error;
  EXPECT_TRUE(rep.traceComplete);
  EXPECT_GT(rep.refuted, 0);
  EXPECT_EQ(rep.refuted, rep.restored);
  // Whatever is STILL deleted must be confirmed safe, never merely trusted
  // (with K=1 the True dep is real and restored; the Anti direction has no
  // witness on this input and legitimately survives, evidence attached).
  for (const dep::Dependence* d : rejectedEdges(*s, "RTDEP")) {
    EXPECT_NE(d->evidence.find("no witness"), std::string::npos)
        << "surviving deletion lacks safety evidence:\n"
        << rep.str();
  }

  // The restored edges carry the witness and survive reanalysis.
  bool sawEvidence = false;
  for (const dep::Dependence& d : s->workspace().graph->all()) {
    if (d.evidence.rfind("trace witness:", 0) == 0) {
      sawEvidence = true;
      EXPECT_EQ(d.mark, dep::DepMark::Pending);
      EXPECT_NE(d.reason.find("auto-restored"), std::string::npos);
    }
  }
  EXPECT_TRUE(sawEvidence);

  // The failure report names the deletion's provenance.
  ASSERT_FALSE(s->failures().empty());
  const ped::FailureReport& f = s->failures().back();
  EXPECT_EQ(f.operation, "validateDeletions");
  EXPECT_TRUE(f.rolledBack);
  EXPECT_NE(f.detail.find("deleted by user"), std::string::npos) << f.detail;
  EXPECT_NE(f.detail.find("deck 'rtdep'"), std::string::npos) << f.detail;
  EXPECT_NE(f.detail.find("believed independent"), std::string::npos)
      << f.detail;
}

TEST(ValidateDeletions, CompleteTraceWithoutWitnessConfirmsSafeDeletion) {
  auto s = loadSource(kRuntimeDep, "rtdep");
  ASSERT_NE(s, nullptr);
  ASSERT_GT(deleteLoopEdges(*s), 0);
  const std::size_t rejectedBefore = rejectedEdges(*s, "RTDEP").size();

  ped::Session::ValidationOptions opts;
  opts.run.input = {100.0};  // K = 100: ranges never overlap
  validate::ValidationReport rep = s->validateDeletions(opts);
  ASSERT_TRUE(rep.ran) << rep.error;
  EXPECT_TRUE(rep.traceComplete);
  EXPECT_EQ(rep.refuted, 0) << rep.str();
  EXPECT_GT(rep.confirmedSafe, 0);

  // Confirmed-safe deletions STAY deleted, with their evidence attached.
  auto rejected = rejectedEdges(*s, "RTDEP");
  EXPECT_EQ(rejected.size(), rejectedBefore);
  for (const dep::Dependence* d : rejected) {
    EXPECT_NE(d->evidence.find("no witness"), std::string::npos)
        << d->evidence;
  }
  EXPECT_TRUE(s->failures().empty());
  EXPECT_TRUE(s->degradationReport().unvalidated.empty());
}

TEST(ValidateDeletions, FailedRunDegradesDeletionsToUnvalidated) {
  auto s = loadSource(kCrashing, "crash");
  ASSERT_NE(s, nullptr);
  ASSERT_GT(deleteLoopEdges(*s), 0);

  ped::Session::ValidationOptions opts;
  opts.run.input = {0.0};  // traps out of bounds
  validate::ValidationReport rep = s->validateDeletions(opts);
  EXPECT_FALSE(rep.ran);
  EXPECT_FALSE(rep.error.empty());
  EXPECT_NE(rep.errorStmt, fortran::kInvalidStmt);
  EXPECT_GT(rep.unvalidated, 0);

  // Deletions survive (nothing proved them wrong) but are explicitly
  // tagged, and the degradation report lists them.
  auto rejected = rejectedEdges(*s, "CRASH");
  ASSERT_FALSE(rejected.empty());
  for (const dep::Dependence* d : rejected) {
    EXPECT_NE(d->evidence.find("unvalidated"), std::string::npos);
  }
  EXPECT_FALSE(s->degradationReport().unvalidated.empty());
}

TEST(ValidateDeletions, BudgetOverflowDegradesToUnvalidatedNotSafe) {
  auto s = loadSource(kRuntimeDep, "rtdep");
  ASSERT_NE(s, nullptr);
  ASSERT_GT(deleteLoopEdges(*s), 0);

  ped::Session::ValidationOptions opts;
  opts.run.input = {100.0};  // safe input, but the trace cannot hold it
  opts.budget.maxEvents = 8;
  opts.relativeChecks = false;
  validate::ValidationReport rep = s->validateDeletions(opts);
  ASSERT_TRUE(rep.ran) << rep.error;
  EXPECT_FALSE(rep.traceComplete);
  EXPECT_EQ(rep.confirmedSafe, 0)
      << "an overflowed trace must never confirm safety:\n"
      << rep.str();
  EXPECT_GT(rep.unvalidated, 0);
  EXPECT_FALSE(s->degradationReport().unvalidated.empty());
}

// ---------------------------------------------------------------------------
// Relative execution: the checker the trace matcher cannot replace.
// ---------------------------------------------------------------------------

TEST(RelativeExecution, RecurrenceLoopDivergesUnderShuffledSchedules) {
  auto s = loadSource(kInterprocRecurrence, "iprec");
  ASSERT_NE(s, nullptr);
  auto loops = s->loops();
  ASSERT_FALSE(loops.empty());
  interp::RunOptions base;
  interp::RunResult serial = s->profile(base);
  ASSERT_TRUE(serial.ok) << serial.error;
  validate::RelativeResult rr = validate::relativeCheck(
      s->program(), loops[0].id, base, serial, /*schedules=*/3);
  EXPECT_TRUE(rr.ran);
  EXPECT_TRUE(rr.diverged) << rr.detail;
  EXPECT_FALSE(rr.detail.empty());
}

TEST(ValidateDeletions, RelativeCheckRestoresInterproceduralDeletion) {
  auto s = loadSource(kInterprocRecurrence, "iprec");
  ASSERT_NE(s, nullptr);
  // Delete every pending carried edge on the loop — including the
  // interprocedural summary edges the trace matcher cannot attribute.
  auto loops = s->loops();
  ASSERT_FALSE(loops.empty());
  ASSERT_TRUE(s->selectLoop(loops[0].id));
  ped::Session::DependenceFilter f;
  f.mark = dep::DepMark::Pending;
  ASSERT_GT(s->markAllMatching(f, dep::DepMark::Rejected, "looks parallel"),
            0);
  ASSERT_FALSE(rejectedEdges(*s, "IPREC").empty());

  validate::ValidationReport rep = s->validateDeletions();
  ASSERT_TRUE(rep.ran) << rep.error;
  EXPECT_GE(rep.relativeChecks, 1) << rep.str();
  EXPECT_GE(rep.relativeDivergences, 1) << rep.str();
  EXPECT_GT(rep.restored, 0) << rep.str();
  // The recurrence-carrying deletions are back; the failure report exists.
  bool sawRelativeEvidence = false;
  ASSERT_TRUE(s->selectProcedure("IPREC"));
  for (const dep::Dependence& d : s->workspace().graph->all()) {
    if (d.evidence.rfind("relative execution:", 0) == 0) {
      sawRelativeEvidence = true;
      EXPECT_EQ(d.mark, dep::DepMark::Pending);
    }
  }
  EXPECT_TRUE(sawRelativeEvidence) << rep.str();
  EXPECT_FALSE(s->failures().empty());
}

// ---------------------------------------------------------------------------
// All eight decks: known-unsound deletions are refuted and auto-restored,
// byte-identically at 1/2/4/8 analysis threads.
// ---------------------------------------------------------------------------

class ValidationDecks : public ::testing::TestWithParam<std::string> {};

TEST_P(ValidationDecks, UnsoundDeletionsRefutedIdenticallyAcrossThreads) {
  const std::string deck = GetParam();

  // One scenario, replayed per thread count: analyze, validate a clean
  // graph to learn which pending edges the trace proves real, delete
  // exactly those (the known-unsound deletions), re-validate, snapshot.
  auto runScenario = [&](int threads, int* victims,
                         validate::ValidationReport* out) -> std::string {
    auto s = loadDeck(deck);
    if (!s) return "LOAD FAILED";
    (void)s->analyzeParallel(threads);

    ped::Session::ValidationOptions opts;
    opts.relativeChecks = false;  // phase under test: the trace matcher
    validate::ValidationReport base = s->validateDeletions(opts);
    EXPECT_TRUE(base.ran) << deck << ": " << base.error;
    EXPECT_EQ(base.refuted, 0) << deck;

    std::vector<std::pair<std::string, std::uint32_t>> toDelete;
    for (const validate::Finding& f : base.findings) {
      if (f.verdict != validate::Verdict::WitnessFound) continue;
      if (f.edge.type == dep::DepType::Input) continue;
      if (toDelete.size() >= 4) break;
      toDelete.push_back({f.edge.procedure, f.edge.depId});
    }
    *victims = static_cast<int>(toDelete.size());
    for (const auto& [proc, id] : toDelete) {
      EXPECT_TRUE(s->selectProcedure(proc)) << deck;
      EXPECT_TRUE(s->markDependence(id, dep::DepMark::Rejected,
                                    "workshop-style deletion"))
          << deck << " dep#" << id;
    }

    validate::ValidationReport rep = s->validateDeletions(opts);
    EXPECT_TRUE(rep.ran) << deck << ": " << rep.error;
    // Every known-unsound deletion is refuted and restored; none survive.
    EXPECT_EQ(rep.refuted, *victims) << deck << ":\n" << rep.str();
    EXPECT_EQ(rep.restored, *victims) << deck;
    for (const auto& [proc, id] : toDelete) {
      EXPECT_TRUE(s->selectProcedure(proc));
      const dep::Dependence* d = s->workspace().graph->byId(id);
      EXPECT_NE(d, nullptr) << deck;
      if (!d) continue;
      EXPECT_EQ(d->mark, dep::DepMark::Pending) << deck << " dep#" << id;
      EXPECT_NE(d->evidence.find("trace witness"), std::string::npos);
    }
    if (out) *out = rep;
    return analysisSnapshot(*s);
  };

  int victims1 = 0;
  validate::ValidationReport rep1;
  const std::string snap1 = runScenario(1, &victims1, &rep1);
  ASSERT_NE(snap1, "LOAD FAILED") << deck;
  for (int threads : {2, 4, 8}) {
    int victims = 0;
    const std::string snap = runScenario(threads, &victims, nullptr);
    EXPECT_EQ(victims, victims1) << deck << " @" << threads;
    EXPECT_EQ(snap, snap1) << deck << " @" << threads
                           << " threads: snapshot diverged";
  }
}

INSTANTIATE_TEST_SUITE_P(All, ValidationDecks, ::testing::Values(
    "spec77", "neoss", "nxsns", "dpmin", "slab2d", "slalom", "pueblo3d",
    "arc3d"));

// At least one deck must actually yield witnessed pending edges, or the
// whole parameterized suite proves nothing.
TEST(ValidationDecks, SuiteIsNotVacuous) {
  int totalWitnessed = 0;
  for (const Workload& w : all()) {
    auto s = loadDeck(w.name);
    ASSERT_NE(s, nullptr) << w.name;
    ped::Session::ValidationOptions opts;
    opts.relativeChecks = false;
    validate::ValidationReport rep = s->validateDeletions(opts);
    if (rep.ran) totalWitnessed += rep.witnessedPending;
  }
  EXPECT_GT(totalWitnessed, 0);
}

// ---------------------------------------------------------------------------
// Evidence persists through the program database.
// ---------------------------------------------------------------------------

TEST(ValidationPersistence, EvidenceAndMarksSurviveWarmReopen) {
  auto s = loadSource(kRuntimeDep, "rtdep");
  ASSERT_NE(s, nullptr);
  ASSERT_GT(deleteLoopEdges(*s), 0);
  ped::Session::ValidationOptions opts;
  opts.run.input = {100.0};
  validate::ValidationReport rep = s->validateDeletions(opts);
  ASSERT_TRUE(rep.ran) << rep.error;
  ASSERT_GT(rep.confirmedSafe, 0);

  ScopedFile store("validation.rtdep.pspdb");
  ASSERT_TRUE(s->savePdb(store.path()));

  for (int threads : {1, 4}) {
    DiagnosticEngine diags;
    auto warm =
        ped::Session::openWarm(kRuntimeDep, store.path(), diags, threads);
    ASSERT_NE(warm, nullptr);
    EXPECT_GT(warm->pdbStats().graphHits, 0u) << "marks changed graph keys?";
    auto rejected = rejectedEdges(*warm, "RTDEP");
    ASSERT_FALSE(rejected.empty())
        << "confirmed-safe deletion lost across reopen @" << threads;
    for (const dep::Dependence* d : rejected) {
      EXPECT_NE(d->evidence.find("no witness"), std::string::npos)
          << "evidence lost across reopen @" << threads;
    }
    // The restored mark table keeps the deletion alive across reanalysis.
    warm->fullReanalysis();
    EXPECT_FALSE(rejectedEdges(*warm, "RTDEP").empty());
  }
}

TEST(ValidationPersistence, ValidationOffAddsNothingToAnalysisState) {
  // A session that never validates produces graphs with no evidence and a
  // snapshot identical across thread counts — the zero-overhead contract.
  for (const std::string deck : {"slab2d", "dpmin"}) {
    auto s1 = loadDeck(deck);
    ASSERT_NE(s1, nullptr);
    (void)s1->analyzeParallel(1);
    std::string snap1 = analysisSnapshot(*s1);
    EXPECT_EQ(snap1.find(" evidence="), std::string::npos) << deck;
    for (int threads : {2, 8}) {
      auto s = loadDeck(deck);
      ASSERT_NE(s, nullptr);
      (void)s->analyzeParallel(threads);
      EXPECT_EQ(analysisSnapshot(*s), snap1) << deck << " @" << threads;
    }
  }
}

}  // namespace
}  // namespace ps::workloads
