#include <gtest/gtest.h>

#include "dependence/graph.h"
#include "fortran/parser.h"
#include "fortran/pretty.h"
#include "interproc/callgraph.h"
#include "interproc/summaries.h"
#include "support/diagnostics.h"

namespace ps::interproc {
namespace {

using fortran::Program;

std::unique_ptr<Program> parse(std::string_view src) {
  ps::DiagnosticEngine diags;
  auto prog = fortran::parseSource(src, diags);
  EXPECT_FALSE(diags.hasErrors()) << diags.dump();
  return prog;
}

// ---------------------------------------------------------------------------
// Call graph
// ---------------------------------------------------------------------------

const char* kThreeLevel =
    "      PROGRAM MAIN\n"
    "      REAL A(100)\n"
    "      CALL MID(A, 100)\n"
    "      END\n"
    "      SUBROUTINE MID(A, N)\n"
    "      REAL A(N)\n"
    "      CALL LEAF(A, N)\n"
    "      X = HELPER(N)\n"
    "      END\n"
    "      SUBROUTINE LEAF(A, N)\n"
    "      REAL A(N)\n"
    "      DO I = 1, N\n"
    "        A(I) = 0.0\n"
    "      ENDDO\n"
    "      END\n"
    "      REAL FUNCTION HELPER(N)\n"
    "      HELPER = FLOAT(N)\n"
    "      END\n";

TEST(CallGraph, EdgesAndOrder) {
  auto prog = parse(kThreeLevel);
  CallGraph cg = CallGraph::build(*prog);
  EXPECT_EQ(cg.callsFrom("MAIN").size(), 1u);
  EXPECT_EQ(cg.callsFrom("MID").size(), 2u);
  EXPECT_EQ(cg.callsTo("LEAF").size(), 1u);
  EXPECT_TRUE(cg.unresolved().empty());
  // Bottom-up: LEAF and HELPER before MID before MAIN.
  auto order = cg.bottomUpOrder();
  auto pos = [&](const std::string& n) {
    for (std::size_t i = 0; i < order.size(); ++i) {
      if (order[i] == n) return static_cast<int>(i);
    }
    return -1;
  };
  EXPECT_LT(pos("LEAF"), pos("MID"));
  EXPECT_LT(pos("HELPER"), pos("MID"));
  EXPECT_LT(pos("MID"), pos("MAIN"));
  EXPECT_TRUE(cg.recursive().empty());
}

TEST(CallGraph, RecursionDetected) {
  auto prog = parse(
      "      SUBROUTINE REC(N)\n"
      "      IF (N .GT. 0) THEN\n"
      "        CALL REC(N - 1)\n"
      "      ENDIF\n"
      "      END\n");
  CallGraph cg = CallGraph::build(*prog);
  ASSERT_EQ(cg.recursive().size(), 1u);
  EXPECT_EQ(cg.recursive()[0], "REC");
}

TEST(CallGraph, UnresolvedLibraryCalls) {
  auto prog = parse(
      "      SUBROUTINE S(X)\n"
      "      CALL LIBFN(X)\n"
      "      END\n");
  CallGraph cg = CallGraph::build(*prog);
  ASSERT_EQ(cg.unresolved().size(), 1u);
  EXPECT_EQ(cg.unresolved()[0], "LIBFN");
}

// ---------------------------------------------------------------------------
// MOD/REF/KILL
// ---------------------------------------------------------------------------

TEST(Summaries, ModRefBasics) {
  auto prog = parse(
      "      SUBROUTINE S(A, B, N, OUT)\n"
      "      REAL A(N), B(N)\n"
      "      DO I = 1, N\n"
      "        A(I) = B(I)\n"
      "      ENDDO\n"
      "      OUT = B(1)\n"
      "      END\n");
  SummaryBuilder sb(*prog);
  const ProcSummary* s = sb.summaryOf("S");
  ASSERT_NE(s, nullptr);
  const VarEffect* a = s->effectOn("A");
  ASSERT_NE(a, nullptr);
  EXPECT_TRUE(a->mayWrite);
  EXPECT_FALSE(a->mayRead);
  const VarEffect* bEff = s->effectOn("B");
  ASSERT_NE(bEff, nullptr);
  EXPECT_TRUE(bEff->mayRead);
  EXPECT_FALSE(bEff->mayWrite);
  const VarEffect* out = s->effectOn("OUT");
  ASSERT_NE(out, nullptr);
  EXPECT_TRUE(out->mayWrite);
  EXPECT_TRUE(out->kills);  // unconditional assignment
}

TEST(Summaries, KillIsFlowSensitive) {
  auto prog = parse(
      "      SUBROUTINE S(X, C)\n"
      "      IF (C .GT. 0.0) THEN\n"
      "        X = 1.0\n"
      "      ENDIF\n"
      "      END\n");
  SummaryBuilder sb(*prog);
  const VarEffect* x = sb.summaryOf("S")->effectOn("X");
  ASSERT_NE(x, nullptr);
  EXPECT_TRUE(x->mayWrite);
  EXPECT_FALSE(x->kills);  // only written on one path
}

TEST(Summaries, KillBothBranches) {
  auto prog = parse(
      "      SUBROUTINE S(X, C)\n"
      "      IF (C .GT. 0.0) THEN\n"
      "        X = 1.0\n"
      "      ELSE\n"
      "        X = 2.0\n"
      "      ENDIF\n"
      "      END\n");
  SummaryBuilder sb(*prog);
  EXPECT_TRUE(sb.summaryOf("S")->effectOn("X")->kills);
}

TEST(Summaries, InterproceduralScalarKill) {
  // The nxsns pattern: a scalar killed inside a procedure called in a loop.
  auto prog = parse(
      "      SUBROUTINE OUTER(A, N, T)\n"
      "      REAL A(N)\n"
      "      CALL SETT(T, A(1))\n"
      "      END\n"
      "      SUBROUTINE SETT(T, V)\n"
      "      T = V*2.0\n"
      "      END\n");
  SummaryBuilder sb(*prog);
  const VarEffect* t = sb.summaryOf("OUTER")->effectOn("T");
  ASSERT_NE(t, nullptr);
  EXPECT_TRUE(t->mayWrite);
  EXPECT_TRUE(t->kills);  // the call is unconditional and SETT kills T
}

TEST(Summaries, CommonEffectsPropagate) {
  auto prog = parse(
      "      SUBROUTINE TOP\n"
      "      COMMON /BLK/ Q\n"
      "      CALL BOT\n"
      "      END\n"
      "      SUBROUTINE BOT\n"
      "      COMMON /BLK/ Q\n"
      "      Q = 1.0\n"
      "      END\n");
  SummaryBuilder sb(*prog);
  const VarEffect* q = sb.summaryOf("TOP")->effectOn("Q");
  ASSERT_NE(q, nullptr);
  EXPECT_TRUE(q->mayWrite);
}

// ---------------------------------------------------------------------------
// Regular sections
// ---------------------------------------------------------------------------

TEST(Sections, WholeArrayLoop) {
  auto prog = parse(
      "      SUBROUTINE FILL(A, N)\n"
      "      REAL A(N)\n"
      "      DO I = 1, N\n"
      "        A(I) = 0.0\n"
      "      ENDDO\n"
      "      END\n");
  SummaryBuilder sb(*prog);
  const VarEffect* a = sb.summaryOf("FILL")->effectOn("A");
  ASSERT_NE(a, nullptr);
  ASSERT_TRUE(a->writeSection.has_value());
  ASSERT_EQ(a->writeSection->dims.size(), 1u);
  ASSERT_TRUE(a->writeSection->dims[0].has_value());
  EXPECT_EQ(a->writeSection->dims[0]->str(), "1:N");
  EXPECT_TRUE(a->kills);  // covers the declared extent A(N)
}

TEST(Sections, SingleColumn) {
  auto prog = parse(
      "      SUBROUTINE COL(A, N, M, J)\n"
      "      REAL A(N, M)\n"
      "      DO I = 1, N\n"
      "        A(I, J) = 0.0\n"
      "      ENDDO\n"
      "      END\n");
  SummaryBuilder sb(*prog);
  const VarEffect* a = sb.summaryOf("COL")->effectOn("A");
  ASSERT_TRUE(a->writeSection.has_value());
  ASSERT_EQ(a->writeSection->dims.size(), 2u);
  EXPECT_EQ(a->writeSection->dims[0]->str(), "1:N");
  EXPECT_EQ(a->writeSection->dims[1]->str(), "J");
  EXPECT_FALSE(a->kills);  // only one column
}

TEST(Sections, TranslatedThroughCallChain) {
  // MID calls LEAF(A, N): LEAF writes A(1:N); MID's summary must show the
  // same section after translation.
  auto prog = parse(kThreeLevel);
  SummaryBuilder sb(*prog);
  const VarEffect* a = sb.summaryOf("MID")->effectOn("A");
  ASSERT_NE(a, nullptr);
  EXPECT_TRUE(a->mayWrite);
  ASSERT_TRUE(a->writeSection.has_value());
  ASSERT_TRUE(a->writeSection->dims[0].has_value());
  EXPECT_EQ(a->writeSection->dims[0]->str(), "1:N");
}

TEST(Sections, WidenedOverCallersLoop) {
  // Caller invokes COL(A, N, M, J) inside DO J: the summary of CALLER must
  // widen the second dimension over J's range.
  auto prog = parse(
      "      SUBROUTINE CALLER(A, N, M)\n"
      "      REAL A(N, M)\n"
      "      DO J = 1, M\n"
      "        CALL COL(A, N, M, J)\n"
      "      ENDDO\n"
      "      END\n"
      "      SUBROUTINE COL(A, N, M, J)\n"
      "      REAL A(N, M)\n"
      "      DO I = 1, N\n"
      "        A(I, J) = 0.0\n"
      "      ENDDO\n"
      "      END\n");
  SummaryBuilder sb(*prog);
  const VarEffect* a = sb.summaryOf("CALLER")->effectOn("A");
  ASSERT_NE(a, nullptr);
  ASSERT_TRUE(a->writeSection.has_value());
  ASSERT_TRUE(a->writeSection->dims[1].has_value());
  EXPECT_EQ(a->writeSection->dims[1]->str(), "1:M");
  EXPECT_TRUE(a->kills);  // full A(N, M) covered
}

// ---------------------------------------------------------------------------
// Interprocedural constants and relations
// ---------------------------------------------------------------------------

TEST(Globals, FormalConstantFromCallSites) {
  auto prog = parse(
      "      PROGRAM MAIN\n"
      "      REAL A(100)\n"
      "      CALL WORK(A, 64)\n"
      "      CALL WORK(A, 64)\n"
      "      END\n"
      "      SUBROUTINE WORK(A, N)\n"
      "      REAL A(N)\n"
      "      DO I = 1, N\n"
      "        A(I) = 0.0\n"
      "      ENDDO\n"
      "      END\n");
  SummaryBuilder sb(*prog);
  auto consts = sb.inheritedConstantsFor("WORK");
  ASSERT_TRUE(consts.count("N"));
  EXPECT_EQ(consts["N"], 64);
}

TEST(Globals, DifferentCallSiteValuesGiveNoConstant) {
  auto prog = parse(
      "      PROGRAM MAIN\n"
      "      REAL A(100)\n"
      "      CALL WORK(A, 64)\n"
      "      CALL WORK(A, 32)\n"
      "      END\n"
      "      SUBROUTINE WORK(A, N)\n"
      "      REAL A(N)\n"
      "      A(1) = 0.0\n"
      "      END\n");
  SummaryBuilder sb(*prog);
  EXPECT_FALSE(sb.inheritedConstantsFor("WORK").count("N"));
}

TEST(Globals, CommonConstantFromInit) {
  auto prog = parse(
      "      PROGRAM MAIN\n"
      "      COMMON /DIMS/ JMAX\n"
      "      JMAX = 50\n"
      "      CALL WORK\n"
      "      END\n"
      "      SUBROUTINE WORK\n"
      "      COMMON /DIMS/ JMAX\n"
      "      X = FLOAT(JMAX)\n"
      "      END\n");
  SummaryBuilder sb(*prog);
  auto consts = sb.inheritedConstantsFor("WORK");
  ASSERT_TRUE(consts.count("JMAX"));
  EXPECT_EQ(consts["JMAX"], 50);
}

TEST(Globals, Arc3dRelationThroughCommon) {
  // JM = JMAX - 1 established once in the init routine, used in FILT.
  auto prog = parse(
      "      PROGRAM MAIN\n"
      "      COMMON /DIMS/ JM, JMAX\n"
      "      READ *, JMAX\n"
      "      JM = JMAX - 1\n"
      "      CALL FILT\n"
      "      END\n"
      "      SUBROUTINE FILT\n"
      "      COMMON /DIMS/ JM, JMAX\n"
      "      REAL WR1(100, 100)\n"
      "      DO K = 2, 99\n"
      "        WR1(JMAX, K) = WR1(JM, K - 1)\n"
      "      ENDDO\n"
      "      END\n");
  SummaryBuilder sb(*prog);
  auto rels = sb.inheritedRelationsFor("FILT");
  bool found = false;
  for (const auto& r : rels) {
    if (r.name == "JM") {
      found = true;
      EXPECT_EQ(r.value.coefOf("JMAX"), 1);
      EXPECT_EQ(r.value.constant, -1);
    }
  }
  ASSERT_TRUE(found);

  // End-to-end: the relation disproves the carried dependence in FILT.
  fortran::Procedure* filt = prog->findUnit("FILT");
  ir::ProcedureModel model(*filt);
  dep::AnalysisContext ctx;
  ctx.inheritedRelations = rels;
  auto g = dep::DependenceGraph::build(model, ctx);
  EXPECT_TRUE(g.parallelizable(*model.topLevelLoops()[0]));

  // And without the interprocedural relation, the dependence is assumed.
  dep::AnalysisContext bare;
  ir::ProcedureModel model2(*filt);
  auto g2 = dep::DependenceGraph::build(model2, bare);
  EXPECT_FALSE(g2.parallelizable(*model2.topLevelLoops()[0]));
}

// ---------------------------------------------------------------------------
// Oracle end-to-end: the spec77 gloop pattern
// ---------------------------------------------------------------------------

TEST(Oracle, GloopParallelWithSections) {
  // A loop over latitudes calling a routine that only touches its own
  // column: interprocedural section analysis proves the loop parallel.
  auto prog = parse(
      "      SUBROUTINE GLOOP(FLN, N, LAT)\n"
      "      REAL FLN(100, 12)\n"
      "      DO 10 L = 1, LAT\n"
      "        CALL FL22(FLN, N, L)\n"
      "   10 CONTINUE\n"
      "      END\n"
      "      SUBROUTINE FL22(FLN, N, L)\n"
      "      REAL FLN(100, 12)\n"
      "      DO I = 1, N\n"
      "        FLN(I, L) = FLN(I, L)*2.0\n"
      "      ENDDO\n"
      "      END\n");
  SummaryBuilder sb(*prog);
  fortran::Procedure* gloop = prog->findUnit("GLOOP");
  InterproceduralOracle oracle(sb, *gloop);
  EXPECT_TRUE(oracle.knowsCallee("FL22"));

  ir::ProcedureModel model(*gloop);
  dep::AnalysisContext ctx;
  ctx.oracle = &oracle;
  auto g = dep::DependenceGraph::build(model, ctx);
  auto* loop = model.topLevelLoops()[0];
  EXPECT_TRUE(g.parallelizable(*loop))
      << "inhibitors: " << g.parallelismInhibitors(*loop).size();

  // Without the oracle the loop is (conservatively) not parallelizable.
  ir::ProcedureModel model2(*gloop);
  auto g2 = dep::DependenceGraph::build(model2, {});
  EXPECT_FALSE(g2.parallelizable(*model2.topLevelLoops()[0]));
}

TEST(Oracle, ConflictingColumnsStayDependent) {
  auto prog = parse(
      "      SUBROUTINE GLOOP(FLN, N, LAT)\n"
      "      REAL FLN(100, 12)\n"
      "      DO 10 L = 1, LAT\n"
      "        CALL FL22(FLN, N, L)\n"
      "   10 CONTINUE\n"
      "      END\n"
      "      SUBROUTINE FL22(FLN, N, L)\n"
      "      REAL FLN(100, 12)\n"
      "      DO I = 1, N\n"
      "        FLN(I, 1) = FLN(I, L)*2.0\n"
      "      ENDDO\n"
      "      END\n");
  SummaryBuilder sb(*prog);
  fortran::Procedure* gloop = prog->findUnit("GLOOP");
  InterproceduralOracle oracle(sb, *gloop);
  ir::ProcedureModel model(*gloop);
  dep::AnalysisContext ctx;
  ctx.oracle = &oracle;
  auto g = dep::DependenceGraph::build(model, ctx);
  EXPECT_FALSE(g.parallelizable(*model.topLevelLoops()[0]));
}

TEST(Oracle, ScalarReadOnlyActualCausesNoDeps) {
  auto prog = parse(
      "      SUBROUTINE DRIVER(A, N)\n"
      "      REAL A(N)\n"
      "      DO I = 1, N\n"
      "        CALL TOUCH(A, I, N)\n"
      "      ENDDO\n"
      "      END\n"
      "      SUBROUTINE TOUCH(A, I, N)\n"
      "      REAL A(N)\n"
      "      A(I) = FLOAT(I)/FLOAT(N)\n"
      "      END\n");
  SummaryBuilder sb(*prog);
  fortran::Procedure* driver = prog->findUnit("DRIVER");
  InterproceduralOracle oracle(sb, *driver);
  ir::ProcedureModel model(*driver);
  dep::AnalysisContext ctx;
  ctx.oracle = &oracle;
  auto g = dep::DependenceGraph::build(model, ctx);
  auto* loop = model.topLevelLoops()[0];
  EXPECT_TRUE(g.parallelizable(*loop))
      << "inhibitors: " << g.parallelismInhibitors(*loop).size();
}

}  // namespace
}  // namespace ps::interproc
