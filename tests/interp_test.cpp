#include "interp/machine.h"

#include <gtest/gtest.h>

#include "fortran/parser.h"
#include "support/diagnostics.h"

namespace ps::interp {
namespace {

using fortran::Program;

std::unique_ptr<Program> parse(std::string_view src) {
  ps::DiagnosticEngine diags;
  auto prog = fortran::parseSource(src, diags);
  EXPECT_FALSE(diags.hasErrors()) << diags.dump();
  return prog;
}

RunResult runSrc(std::string_view src, RunOptions opts = {}) {
  auto prog = parse(src);
  Machine m(*prog);
  return m.run(opts);
}

TEST(Machine, ArithmeticAndOutput) {
  auto r = runSrc(
      "      PROGRAM MAIN\n"
      "      X = 2.0 + 3.0*4.0\n"
      "      I = 7/2\n"
      "      WRITE(6, *) X, I\n"
      "      END\n");
  ASSERT_TRUE(r.ok) << r.error;
  ASSERT_EQ(r.output.size(), 2u);
  EXPECT_DOUBLE_EQ(r.output[0], 14.0);
  EXPECT_DOUBLE_EQ(r.output[1], 3.0);  // integer division
}

TEST(Machine, DoLoopSum) {
  auto r = runSrc(
      "      PROGRAM MAIN\n"
      "      S = 0.0\n"
      "      DO I = 1, 10\n"
      "        S = S + FLOAT(I)\n"
      "      ENDDO\n"
      "      WRITE(6, *) S\n"
      "      END\n");
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_DOUBLE_EQ(r.output[0], 55.0);
}

TEST(Machine, DoLoopWithStepAndFinalValue) {
  auto r = runSrc(
      "      PROGRAM MAIN\n"
      "      N = 0\n"
      "      DO I = 10, 1, -2\n"
      "        N = N + 1\n"
      "      ENDDO\n"
      "      WRITE(6, *) N, I\n"
      "      END\n");
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_DOUBLE_EQ(r.output[0], 5.0);
  EXPECT_DOUBLE_EQ(r.output[1], 0.0);  // 10 + 5*(-2)
}

TEST(Machine, ZeroTripLoop) {
  auto r = runSrc(
      "      PROGRAM MAIN\n"
      "      N = 0\n"
      "      DO I = 5, 1\n"
      "        N = N + 1\n"
      "      ENDDO\n"
      "      WRITE(6, *) N\n"
      "      END\n");
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_DOUBLE_EQ(r.output[0], 0.0);
}

TEST(Machine, ArraysColumnMajor) {
  auto r = runSrc(
      "      PROGRAM MAIN\n"
      "      REAL A(3, 2)\n"
      "      DO J = 1, 2\n"
      "        DO I = 1, 3\n"
      "          A(I, J) = FLOAT(I*10 + J)\n"
      "        ENDDO\n"
      "      ENDDO\n"
      "      WRITE(6, *) A(3, 1), A(1, 2)\n"
      "      END\n");
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_DOUBLE_EQ(r.output[0], 31.0);
  EXPECT_DOUBLE_EQ(r.output[1], 12.0);
}

TEST(Machine, BlockIfAndLogical) {
  auto r = runSrc(
      "      PROGRAM MAIN\n"
      "      X = 3.0\n"
      "      IF (X .GT. 5.0) THEN\n"
      "        Y = 1.0\n"
      "      ELSE IF (X .GT. 2.0 .AND. X .LT. 4.0) THEN\n"
      "        Y = 2.0\n"
      "      ELSE\n"
      "        Y = 3.0\n"
      "      ENDIF\n"
      "      WRITE(6, *) Y\n"
      "      END\n");
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_DOUBLE_EQ(r.output[0], 2.0);
}

TEST(Machine, GotoAndArithmeticIf) {
  // The neoss pattern, executable.
  auto r = runSrc(
      "      PROGRAM MAIN\n"
      "      REAL DENV(5), RES(6)\n"
      "      DO I = 1, 5\n"
      "        DENV(I) = FLOAT(I) - 3.0\n"
      "        RES(I) = 0.0\n"
      "      ENDDO\n"
      "      RES(6) = 0.0\n"
      "      DO 50 K = 1, 5\n"
      "        IF (DENV(K)) 100, 10, 10\n"
      "   10   CONTINUE\n"
      "        DENV(K) = DENV(K)*2.0\n"
      "        GOTO 101\n"
      "  100   DENV(K) = 0.0\n"
      "  101   RES(K) = DENV(K)\n"
      "   50 CONTINUE\n"
      "      WRITE(6, *) RES(1), RES(3), RES(5)\n"
      "      END\n");
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_DOUBLE_EQ(r.output[0], 0.0);  // negative -> zeroed
  EXPECT_DOUBLE_EQ(r.output[1], 0.0);  // exactly zero -> doubled 0
  EXPECT_DOUBLE_EQ(r.output[2], 4.0);  // 2 -> 4
}

TEST(Machine, SubroutineByReference) {
  auto r = runSrc(
      "      PROGRAM MAIN\n"
      "      REAL A(4)\n"
      "      DO I = 1, 4\n"
      "        A(I) = 0.0\n"
      "      ENDDO\n"
      "      CALL FILL(A, 4, 7.0)\n"
      "      WRITE(6, *) A(1), A(4)\n"
      "      END\n"
      "      SUBROUTINE FILL(X, N, V)\n"
      "      REAL X(N)\n"
      "      DO I = 1, N\n"
      "        X(I) = V\n"
      "      ENDDO\n"
      "      END\n");
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_DOUBLE_EQ(r.output[0], 7.0);
  EXPECT_DOUBLE_EQ(r.output[1], 7.0);
}

TEST(Machine, ArrayElementActualAliases) {
  // Passing A(3) gives the callee a window starting at element 3.
  auto r = runSrc(
      "      PROGRAM MAIN\n"
      "      REAL A(6)\n"
      "      DO I = 1, 6\n"
      "        A(I) = 0.0\n"
      "      ENDDO\n"
      "      CALL FILL(A(3), 2, 9.0)\n"
      "      WRITE(6, *) A(2), A(3), A(4), A(5)\n"
      "      END\n"
      "      SUBROUTINE FILL(X, N, V)\n"
      "      REAL X(N)\n"
      "      DO I = 1, N\n"
      "        X(I) = V\n"
      "      ENDDO\n"
      "      END\n");
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_DOUBLE_EQ(r.output[0], 0.0);
  EXPECT_DOUBLE_EQ(r.output[1], 9.0);
  EXPECT_DOUBLE_EQ(r.output[2], 9.0);
  EXPECT_DOUBLE_EQ(r.output[3], 0.0);
}

TEST(Machine, FunctionCall) {
  auto r = runSrc(
      "      PROGRAM MAIN\n"
      "      X = TWICE(21.0)\n"
      "      WRITE(6, *) X\n"
      "      END\n"
      "      REAL FUNCTION TWICE(V)\n"
      "      TWICE = V*2.0\n"
      "      END\n");
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_DOUBLE_EQ(r.output[0], 42.0);
}

TEST(Machine, CommonBlocks) {
  auto r = runSrc(
      "      PROGRAM MAIN\n"
      "      COMMON /BLK/ Q, W(3)\n"
      "      Q = 5.0\n"
      "      W(2) = 6.0\n"
      "      CALL SHOW\n"
      "      END\n"
      "      SUBROUTINE SHOW\n"
      "      COMMON /BLK/ Q, W(3)\n"
      "      WRITE(6, *) Q, W(2)\n"
      "      END\n");
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_DOUBLE_EQ(r.output[0], 5.0);
  EXPECT_DOUBLE_EQ(r.output[1], 6.0);
}

TEST(Machine, ReadFromInputStream) {
  RunOptions opts;
  opts.input = {3.0, 4.0};
  auto r = runSrc(
      "      PROGRAM MAIN\n"
      "      READ *, X, Y\n"
      "      WRITE(6, *) X + Y\n"
      "      END\n",
      opts);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_DOUBLE_EQ(r.output[0], 7.0);
}

TEST(Machine, Intrinsics) {
  auto r = runSrc(
      "      PROGRAM MAIN\n"
      "      WRITE(6, *) ABS(-3.0), SQRT(16.0), MAX(2, 7), MOD(10, 3)\n"
      "      WRITE(6, *) MIN(2.0, -1.0), SIGN(5.0, -1.0), INT(3.7)\n"
      "      END\n");
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_DOUBLE_EQ(r.output[0], 3.0);
  EXPECT_DOUBLE_EQ(r.output[1], 4.0);
  EXPECT_DOUBLE_EQ(r.output[2], 7.0);
  EXPECT_DOUBLE_EQ(r.output[3], 1.0);
  EXPECT_DOUBLE_EQ(r.output[4], -1.0);
  EXPECT_DOUBLE_EQ(r.output[5], -5.0);
  EXPECT_DOUBLE_EQ(r.output[6], 3.0);
}

TEST(Machine, StopTerminates) {
  auto r = runSrc(
      "      PROGRAM MAIN\n"
      "      WRITE(6, *) 1.0\n"
      "      STOP\n"
      "      WRITE(6, *) 2.0\n"
      "      END\n");
  ASSERT_TRUE(r.ok) << r.error;
  ASSERT_EQ(r.output.size(), 1u);
}

TEST(Machine, StopInsideCallUnwinds) {
  auto r = runSrc(
      "      PROGRAM MAIN\n"
      "      CALL QUIT\n"
      "      WRITE(6, *) 2.0\n"
      "      END\n"
      "      SUBROUTINE QUIT\n"
      "      STOP\n"
      "      END\n");
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_TRUE(r.output.empty());
}

TEST(Machine, OutOfBoundsDetected) {
  auto r = runSrc(
      "      PROGRAM MAIN\n"
      "      REAL A(3)\n"
      "      A(4) = 1.0\n"
      "      END\n");
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("subscript"), std::string::npos);
}

TEST(Machine, StepLimitGuards) {
  RunOptions opts;
  opts.maxSteps = 100;
  auto r = runSrc(
      "      PROGRAM MAIN\n"
      "   10 CONTINUE\n"
      "      GOTO 10\n"
      "      END\n",
      opts);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("step limit"), std::string::npos);
}

TEST(Machine, ProfileCountsHotLoop) {
  auto prog = parse(
      "      PROGRAM MAIN\n"
      "      REAL A(10)\n"
      "      DO I = 1, 10\n"
      "        A(I) = 1.0\n"
      "      ENDDO\n"
      "      X = A(1)\n"
      "      END\n");
  Machine m(*prog);
  auto r = m.run();
  ASSERT_TRUE(r.ok) << r.error;
  const auto& main = *prog->units[0];
  const auto& loop = *main.body[0];
  const auto& bodyAssign = *loop.body[0];
  const auto& after = *main.body[1];
  EXPECT_EQ(r.stmtCounts.at(bodyAssign.id), 10);
  EXPECT_EQ(r.stmtCounts.at(after.id), 1);
}

// ---------------------------------------------------------------------------
// Parallel loops and the race detector
// ---------------------------------------------------------------------------

TEST(Parallel, IndependentLoopHasNoRaces) {
  auto r = runSrc(
      "      PROGRAM MAIN\n"
      "      REAL A(50)\n"
      "      PARALLEL DO I = 1, 50\n"
      "        A(I) = FLOAT(I)*2.0\n"
      "      ENDDO\n"
      "      WRITE(6, *) A(25)\n"
      "      END\n");
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_TRUE(r.races.empty());
  EXPECT_DOUBLE_EQ(r.output[0], 50.0);
}

TEST(Parallel, RecurrenceRaceDetected) {
  auto r = runSrc(
      "      PROGRAM MAIN\n"
      "      REAL A(50)\n"
      "      DO I = 1, 50\n"
      "        A(I) = FLOAT(I)\n"
      "      ENDDO\n"
      "      PARALLEL DO I = 2, 50\n"
      "        A(I) = A(I - 1) + 1.0\n"
      "      ENDDO\n"
      "      END\n");
  ASSERT_TRUE(r.ok) << r.error;
  ASSERT_FALSE(r.races.empty());
  EXPECT_EQ(r.races[0].variable, "A");
  EXPECT_FALSE(r.races[0].outputOnly);
}

TEST(Parallel, SharedScalarAccumulatorRace) {
  auto r = runSrc(
      "      PROGRAM MAIN\n"
      "      S = 0.0\n"
      "      PARALLEL DO I = 1, 20\n"
      "        S = S + FLOAT(I)\n"
      "      ENDDO\n"
      "      WRITE(6, *) S\n"
      "      END\n");
  ASSERT_TRUE(r.ok) << r.error;
  ASSERT_FALSE(r.races.empty());
  EXPECT_EQ(r.races[0].variable, "S");
}

TEST(Parallel, KilledScalarIsNotARace) {
  // T is written before read in every iteration: dynamically private.
  auto r = runSrc(
      "      PROGRAM MAIN\n"
      "      REAL A(20)\n"
      "      DO I = 1, 20\n"
      "        A(I) = FLOAT(I)\n"
      "      ENDDO\n"
      "      PARALLEL DO I = 1, 20\n"
      "        T = A(I)*2.0\n"
      "        A(I) = T + 1.0\n"
      "      ENDDO\n"
      "      WRITE(6, *) A(20)\n"
      "      END\n");
  ASSERT_TRUE(r.ok) << r.error;
  // Only a write-write (output) conflict on T remains; it is reported as
  // outputOnly, never as a flow/anti race.
  for (const auto& race : r.races) {
    EXPECT_TRUE(race.outputOnly) << race.variable;
  }
  EXPECT_DOUBLE_EQ(r.output[0], 41.0);
}

TEST(Parallel, InnerSequentialLoopIVNotFlagged) {
  auto r = runSrc(
      "      PROGRAM MAIN\n"
      "      REAL A(10, 10)\n"
      "      PARALLEL DO J = 1, 10\n"
      "        DO I = 1, 10\n"
      "          A(I, J) = FLOAT(I + J)\n"
      "        ENDDO\n"
      "      ENDDO\n"
      "      WRITE(6, *) A(10, 10)\n"
      "      END\n");
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_TRUE(r.races.empty());
  EXPECT_DOUBLE_EQ(r.output[0], 20.0);
}

TEST(Parallel, ShuffleIsDeterministicPerSeed) {
  const char* src =
      "      PROGRAM MAIN\n"
      "      REAL A(30)\n"
      "      PARALLEL DO I = 1, 30\n"
      "        A(I) = FLOAT(I)\n"
      "      ENDDO\n"
      "      WRITE(6, *) A(7)\n"
      "      END\n";
  RunOptions o1;
  o1.shuffleSeed = 42;
  RunOptions o2;
  o2.shuffleSeed = 42;
  auto r1 = runSrc(src, o1);
  auto r2 = runSrc(src, o2);
  ASSERT_TRUE(r1.ok && r2.ok);
  EXPECT_TRUE(r1.outputEquals(r2));
}

TEST(Parallel, OutputComparisonAcrossSchedules) {
  // A genuinely parallel loop must produce identical output under any
  // iteration order.
  const char* src =
      "      PROGRAM MAIN\n"
      "      REAL A(40), B(40)\n"
      "      DO I = 1, 40\n"
      "        B(I) = FLOAT(I)\n"
      "      ENDDO\n"
      "      PARALLEL DO I = 1, 40\n"
      "        A(I) = B(I)*B(I) + 1.0\n"
      "      ENDDO\n"
      "      DO I = 1, 40\n"
      "        WRITE(6, *) A(I)\n"
      "      ENDDO\n"
      "      END\n";
  RunOptions o1;
  o1.shuffleSeed = 1;
  RunOptions o2;
  o2.shuffleSeed = 999;
  auto r1 = runSrc(src, o1);
  auto r2 = runSrc(src, o2);
  ASSERT_TRUE(r1.ok && r2.ok);
  EXPECT_TRUE(r1.outputEquals(r2));
  EXPECT_TRUE(r1.races.empty());
}

}  // namespace
}  // namespace ps::interp
