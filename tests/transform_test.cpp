#include <gtest/gtest.h>

#include "fortran/parser.h"
#include "fortran/pretty.h"
#include "interp/machine.h"
#include "support/diagnostics.h"
#include "transform/transform.h"

namespace ps::transform {
namespace {

using fortran::Program;
using fortran::Stmt;
using fortran::StmtId;
using fortran::StmtKind;

std::unique_ptr<Program> parse(std::string_view src) {
  ps::DiagnosticEngine diags;
  auto prog = fortran::parseSource(src, diags);
  EXPECT_FALSE(diags.hasErrors()) << diags.dump();
  return prog;
}

/// A parsed program with a workspace on one unit.
struct Fixture {
  std::unique_ptr<Program> prog;
  std::unique_ptr<Workspace> ws;
};

Fixture make(std::string_view src, const std::string& unit = "") {
  Fixture f;
  f.prog = parse(src);
  fortran::Procedure* proc =
      unit.empty() ? f.prog->units[0].get() : f.prog->findUnit(unit);
  EXPECT_NE(proc, nullptr);
  f.ws = std::make_unique<Workspace>(*f.prog, *proc);
  return f;
}

/// The n-th loop (pre-order) of the workspace's procedure.
StmtId nthLoop(const Workspace& ws, std::size_t n) {
  const auto& loops = ws.model->loops();
  EXPECT_LT(n, loops.size());
  return loops[n]->stmt->id;
}

/// The n-th statement of a given kind, pre-order.
StmtId nthStmt(const Workspace& ws, StmtKind kind, std::size_t n) {
  std::size_t seen = 0;
  for (const Stmt* s : ws.model->allStmts()) {
    if (s->kind == kind) {
      if (seen == n) return s->id;
      ++seen;
    }
  }
  ADD_FAILURE() << "statement not found";
  return fortran::kInvalidStmt;
}

/// Apply a transformation and verify the program still computes the same
/// outputs (the interpreter is the ground truth for `safe`).
void applyAndCheckSemantics(std::string_view src, const std::string& name,
                            const std::function<Target(Workspace&)>& mkTarget,
                            const std::string& unit = "",
                            double tol = 1e-9) {
  auto original = parse(src);
  interp::Machine m0(*original);
  auto r0 = m0.run();
  ASSERT_TRUE(r0.ok) << r0.error;

  Fixture f = make(src, unit);
  const Transformation* tr = Registry::instance().byName(name);
  ASSERT_NE(tr, nullptr) << name;
  Target target = mkTarget(*f.ws);
  std::string error;
  ASSERT_TRUE(tr->apply(*f.ws, target, &error)) << name << ": " << error;

  interp::Machine m1(*f.prog);
  auto r1 = m1.run();
  ASSERT_TRUE(r1.ok) << r1.error << "\n"
                     << fortran::printProgram(*f.prog);
  EXPECT_TRUE(r0.outputEquals(r1, tol))
      << name << " changed program semantics:\n"
      << fortran::printProgram(*f.prog);
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

TEST(Registry, AllFigure2TransformsPresent) {
  const char* expected[] = {
      "Loop Distribution",  "Loop Interchange",   "Loop Fusion",
      "Loop Reversal",      "Statement Interchange", "Loop Peeling",
      "Loop Splitting",     "Loop Skewing",       "Loop Alignment",
      "Privatization",      "Scalar Expansion",   "Array Renaming",
      "Strip Mining",       "Loop Unrolling",     "Unroll and Jam",
      "Scalar Replacement", "Sequential to Parallel",
      "Parallel to Sequential", "Loop Bounds Adjusting",
      "Statement Deletion", "Statement Addition",
      "Arithmetic IF Removal", "Control Flow Structuring",
      "Reduction Recognition", "Loop Extraction", "Loop Embedding",
  };
  for (const char* name : expected) {
    EXPECT_NE(Registry::instance().byName(name), nullptr) << name;
  }
}

TEST(Registry, TaxonomyListsCategories) {
  std::string tax = Registry::instance().taxonomy();
  EXPECT_NE(tax.find("Reordering"), std::string::npos);
  EXPECT_NE(tax.find("Dependence Breaking"), std::string::npos);
  EXPECT_NE(tax.find("Memory Optimizing"), std::string::npos);
  EXPECT_NE(tax.find("Miscellaneous"), std::string::npos);
  EXPECT_NE(tax.find("Loop Skewing"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Loop Distribution
// ---------------------------------------------------------------------------

const char* kDistProgram =
    "      PROGRAM MAIN\n"
    "      REAL A(20), B(20), S(20)\n"
    "      S(1) = 1.0\n"
    "      DO I = 2, 20\n"
    "        S(I) = S(I - 1) + 1.0\n"
    "        A(I) = FLOAT(I)*2.0\n"
    "        B(I) = A(I) + 1.0\n"
    "      ENDDO\n"
    "      WRITE(6, *) S(20), A(20), B(20)\n"
    "      END\n";

TEST(Distribution, AdviceAndShape) {
  Fixture f = make(kDistProgram);
  const auto* tr = Registry::instance().byName("Loop Distribution");
  Target t;
  t.loop = nthLoop(*f.ws, 0);
  Advice a = tr->advise(*f.ws, t);
  EXPECT_TRUE(a.applicable);
  EXPECT_TRUE(a.safe);
  EXPECT_TRUE(a.profitable) << a.explanation;

  std::string error;
  ASSERT_TRUE(tr->apply(*f.ws, t, &error)) << error;
  // Now there are at least two top-level loops, and at least one is
  // parallelizable while the recurrence one is not.
  auto tops = f.ws->model->topLevelLoops();
  ASSERT_GE(tops.size(), 2u);
  int parallel = 0, serial = 0;
  for (auto* l : tops) {
    if (f.ws->graph->parallelizable(*l)) {
      ++parallel;
    } else {
      ++serial;
    }
  }
  EXPECT_GE(parallel, 1);
  EXPECT_EQ(serial, 1);
}

TEST(Distribution, PreservesSemantics) {
  applyAndCheckSemantics(kDistProgram, "Loop Distribution",
                         [](Workspace& ws) {
                           Target t;
                           t.loop = nthLoop(ws, 0);
                           return t;
                         });
}

TEST(Distribution, RefusesUnstructuredBody) {
  Fixture f = make(
      "      PROGRAM MAIN\n"
      "      REAL A(10)\n"
      "      DO 10 I = 1, 10\n"
      "        IF (A(I) .GT. 0.0) GOTO 10\n"
      "        A(I) = 1.0\n"
      "   10 CONTINUE\n"
      "      END\n");
  const auto* tr = Registry::instance().byName("Loop Distribution");
  Target t;
  t.loop = nthLoop(*f.ws, 0);
  Advice a = tr->advise(*f.ws, t);
  EXPECT_FALSE(a.safe);
}

TEST(Distribution, RespectsDependenceOrder) {
  // B depends on A's loop-carried result: B's group must come second even
  // though... actually the groups must respect topological order.
  applyAndCheckSemantics(
      "      PROGRAM MAIN\n"
      "      REAL A(15), B(15)\n"
      "      A(1) = 1.0\n"
      "      DO I = 2, 15\n"
      "        A(I) = A(I - 1)*1.5\n"
      "        B(I) = A(I) + 1.0\n"
      "      ENDDO\n"
      "      WRITE(6, *) A(15), B(15)\n"
      "      END\n",
      "Loop Distribution", [](Workspace& ws) {
        Target t;
        t.loop = nthLoop(ws, 0);
        return t;
      });
}

// ---------------------------------------------------------------------------
// Loop Interchange
// ---------------------------------------------------------------------------

const char* kInterchangeProgram =
    "      PROGRAM MAIN\n"
    "      REAL A(8, 8)\n"
    "      DO J = 2, 8\n"
    "        DO I = 1, 8\n"
    "          A(I, J) = FLOAT(I + J)\n"
    "        ENDDO\n"
    "      ENDDO\n"
    "      WRITE(6, *) A(3, 5), A(8, 8)\n"
    "      END\n";

TEST(Interchange, SwapsHeaders) {
  Fixture f = make(kInterchangeProgram);
  const auto* tr = Registry::instance().byName("Loop Interchange");
  Target t;
  t.loop = nthLoop(*f.ws, 0);
  std::string error;
  ASSERT_TRUE(tr->apply(*f.ws, t, &error)) << error;
  auto tops = f.ws->model->topLevelLoops();
  ASSERT_EQ(tops.size(), 1u);
  EXPECT_EQ(tops[0]->inductionVar(), "I");
  EXPECT_EQ(tops[0]->children[0]->inductionVar(), "J");
}

TEST(Interchange, PreservesSemantics) {
  applyAndCheckSemantics(kInterchangeProgram, "Loop Interchange",
                         [](Workspace& ws) {
                           Target t;
                           t.loop = nthLoop(ws, 0);
                           return t;
                         });
}

TEST(Interchange, RefusesIllegalDirectionVector) {
  // A(I,J) = A(I-1,J+1): dep vector (<,>) — interchange illegal.
  Fixture f = make(
      "      PROGRAM MAIN\n"
      "      REAL A(10, 10)\n"
      "      DO I = 2, 9\n"
      "        DO J = 1, 9\n"
      "          A(I, J) = A(I - 1, J + 1)\n"
      "        ENDDO\n"
      "      ENDDO\n"
      "      END\n");
  const auto* tr = Registry::instance().byName("Loop Interchange");
  Target t;
  t.loop = nthLoop(*f.ws, 0);
  Advice a = tr->advise(*f.ws, t);
  EXPECT_TRUE(a.applicable);
  EXPECT_FALSE(a.safe);
}

TEST(Interchange, LegalWhenBothForward) {
  // A(I,J) = A(I-1,J-1): (<,<) — interchange legal, still (<,<).
  applyAndCheckSemantics(
      "      PROGRAM MAIN\n"
      "      REAL A(10, 10)\n"
      "      DO I = 1, 10\n"
      "        A(I, 1) = FLOAT(I)\n"
      "        A(1, I) = FLOAT(I)\n"
      "      ENDDO\n"
      "      DO I = 2, 9\n"
      "        DO J = 2, 9\n"
      "          A(I, J) = A(I - 1, J - 1) + 1.0\n"
      "        ENDDO\n"
      "      ENDDO\n"
      "      WRITE(6, *) A(9, 9), A(5, 7)\n"
      "      END\n",
      "Loop Interchange", [](Workspace& ws) {
        Target t;
        t.loop = nthLoop(ws, 1);
        return t;
      });
}

TEST(Interchange, RefusesTriangular) {
  Fixture f = make(
      "      PROGRAM MAIN\n"
      "      REAL A(10, 10)\n"
      "      DO I = 1, 10\n"
      "        DO J = I, 10\n"
      "          A(I, J) = 1.0\n"
      "        ENDDO\n"
      "      ENDDO\n"
      "      END\n");
  const auto* tr = Registry::instance().byName("Loop Interchange");
  Target t;
  t.loop = nthLoop(*f.ws, 0);
  EXPECT_FALSE(tr->advise(*f.ws, t).safe);
}

TEST(Interchange, ProfitableWhenMovesParallelismOutward) {
  // Outer carries the dependence, inner is parallel: interchange puts the
  // parallel loop outside.
  Fixture f = make(
      "      PROGRAM MAIN\n"
      "      REAL A(10, 10)\n"
      "      DO J = 2, 9\n"
      "        DO I = 1, 10\n"
      "          A(I, J) = A(I, J - 1)\n"
      "        ENDDO\n"
      "      ENDDO\n"
      "      END\n");
  const auto* tr = Registry::instance().byName("Loop Interchange");
  Target t;
  t.loop = nthLoop(*f.ws, 0);
  Advice a = tr->advise(*f.ws, t);
  ASSERT_TRUE(a.safe) << a.explanation;
  EXPECT_TRUE(a.profitable);
  std::string error;
  ASSERT_TRUE(tr->apply(*f.ws, t, &error));
  auto tops = f.ws->model->topLevelLoops();
  EXPECT_TRUE(f.ws->graph->parallelizable(*tops[0]));
}

// ---------------------------------------------------------------------------
// Loop Fusion
// ---------------------------------------------------------------------------

const char* kFusionProgram =
    "      PROGRAM MAIN\n"
    "      REAL A(20), B(20)\n"
    "      DO I = 1, 20\n"
    "        A(I) = FLOAT(I)\n"
    "      ENDDO\n"
    "      DO I = 1, 20\n"
    "        B(I) = A(I)*2.0\n"
    "      ENDDO\n"
    "      WRITE(6, *) B(20)\n"
    "      END\n";

TEST(Fusion, FusesAdjacentCompatibleLoops) {
  Fixture f = make(kFusionProgram);
  const auto* tr = Registry::instance().byName("Loop Fusion");
  Target t;
  t.loop = nthLoop(*f.ws, 0);
  t.secondLoop = nthLoop(*f.ws, 1);
  Advice a = tr->advise(*f.ws, t);
  EXPECT_TRUE(a.safe) << a.explanation;
  EXPECT_TRUE(a.profitable);
  std::string error;
  ASSERT_TRUE(tr->apply(*f.ws, t, &error)) << error;
  EXPECT_EQ(f.ws->model->topLevelLoops().size(), 1u);
  EXPECT_EQ(f.ws->model->topLevelLoops()[0]->bodyStmts.size(), 2u);
}

TEST(Fusion, PreservesSemantics) {
  applyAndCheckSemantics(kFusionProgram, "Loop Fusion", [](Workspace& ws) {
    Target t;
    t.loop = nthLoop(ws, 0);
    t.secondLoop = nthLoop(ws, 1);
    return t;
  });
}

TEST(Fusion, RefusesBackwardDependence) {
  // Loop 2 reads A(I+1), written by loop 1: fusing would read a not-yet-
  // written value.
  Fixture f = make(
      "      PROGRAM MAIN\n"
      "      REAL A(21), B(20)\n"
      "      DO I = 1, 20\n"
      "        A(I) = FLOAT(I)\n"
      "      ENDDO\n"
      "      DO I = 1, 20\n"
      "        B(I) = A(I + 1)\n"
      "      ENDDO\n"
      "      END\n");
  const auto* tr = Registry::instance().byName("Loop Fusion");
  Target t;
  t.loop = nthLoop(*f.ws, 0);
  t.secondLoop = nthLoop(*f.ws, 1);
  Advice a = tr->advise(*f.ws, t);
  EXPECT_TRUE(a.applicable);
  EXPECT_FALSE(a.safe);
}

TEST(Fusion, RenamesDifferentInductionVariables) {
  applyAndCheckSemantics(
      "      PROGRAM MAIN\n"
      "      REAL A(20), B(20)\n"
      "      DO I = 1, 20\n"
      "        A(I) = FLOAT(I)\n"
      "      ENDDO\n"
      "      DO K = 1, 20\n"
      "        B(K) = A(K)*3.0\n"
      "      ENDDO\n"
      "      WRITE(6, *) B(7)\n"
      "      END\n",
      "Loop Fusion", [](Workspace& ws) {
        Target t;
        t.loop = nthLoop(ws, 0);
        t.secondLoop = nthLoop(ws, 1);
        return t;
      });
}

TEST(Fusion, RefusesDifferentBounds) {
  Fixture f = make(
      "      PROGRAM MAIN\n"
      "      REAL A(20), B(20)\n"
      "      DO I = 1, 20\n"
      "        A(I) = 1.0\n"
      "      ENDDO\n"
      "      DO I = 1, 19\n"
      "        B(I) = 2.0\n"
      "      ENDDO\n"
      "      END\n");
  const auto* tr = Registry::instance().byName("Loop Fusion");
  Target t;
  t.loop = nthLoop(*f.ws, 0);
  t.secondLoop = nthLoop(*f.ws, 1);
  EXPECT_FALSE(tr->advise(*f.ws, t).applicable);
}

// ---------------------------------------------------------------------------
// Reversal / Statement Interchange / Peeling / Splitting / Skewing
// ---------------------------------------------------------------------------

TEST(Reversal, SafeOnParallelLoopAndPreservesSemantics) {
  applyAndCheckSemantics(
      "      PROGRAM MAIN\n"
      "      REAL A(12)\n"
      "      DO I = 1, 12\n"
      "        A(I) = FLOAT(I*I)\n"
      "      ENDDO\n"
      "      WRITE(6, *) A(5), A(12)\n"
      "      END\n",
      "Loop Reversal", [](Workspace& ws) {
        Target t;
        t.loop = nthLoop(ws, 0);
        return t;
      });
}

TEST(Reversal, RefusesRecurrence) {
  Fixture f = make(
      "      PROGRAM MAIN\n"
      "      REAL A(12)\n"
      "      DO I = 2, 12\n"
      "        A(I) = A(I - 1) + 1.0\n"
      "      ENDDO\n"
      "      END\n");
  const auto* tr = Registry::instance().byName("Loop Reversal");
  Target t;
  t.loop = nthLoop(*f.ws, 0);
  EXPECT_FALSE(tr->advise(*f.ws, t).safe);
}

TEST(StatementInterchange, SwapsIndependentRefusesDependent) {
  const char* src =
      "      PROGRAM MAIN\n"
      "      REAL A(10), B(10), C(10)\n"
      "      DO I = 1, 10\n"
      "        A(I) = FLOAT(I)\n"
      "        B(I) = FLOAT(I)*2.0\n"
      "        C(I) = B(I) + 1.0\n"
      "      ENDDO\n"
      "      WRITE(6, *) A(3), B(3), C(3)\n"
      "      END\n";
  // A and B assignments are independent: swap ok.
  applyAndCheckSemantics(src, "Statement Interchange", [](Workspace& ws) {
    Target t;
    t.stmt = nthStmt(ws, StmtKind::Assign, 0);
    return t;
  });
  // B and C are dependent: refuse.
  Fixture f = make(src);
  const auto* tr = Registry::instance().byName("Statement Interchange");
  Target t;
  t.stmt = nthStmt(*f.ws, StmtKind::Assign, 1);
  EXPECT_FALSE(tr->advise(*f.ws, t).safe);
}

TEST(Peeling, PreservesSemantics) {
  applyAndCheckSemantics(
      "      PROGRAM MAIN\n"
      "      REAL A(10)\n"
      "      A(1) = 5.0\n"
      "      DO I = 2, 10\n"
      "        A(I) = A(I - 1) + 1.0\n"
      "      ENDDO\n"
      "      WRITE(6, *) A(10)\n"
      "      END\n",
      "Loop Peeling", [](Workspace& ws) {
        Target t;
        t.loop = nthLoop(ws, 0);
        return t;
      });
}

TEST(Peeling, ZeroTripLoopStillCorrect) {
  applyAndCheckSemantics(
      "      PROGRAM MAIN\n"
      "      REAL A(10)\n"
      "      A(1) = 5.0\n"
      "      N = 0\n"
      "      DO I = 1, N\n"
      "        A(I) = 99.0\n"
      "      ENDDO\n"
      "      WRITE(6, *) A(1)\n"
      "      END\n",
      "Loop Peeling", [](Workspace& ws) {
        Target t;
        t.loop = nthLoop(ws, 0);
        return t;
      });
}

class SplittingSweep : public ::testing::TestWithParam<long long> {};

TEST_P(SplittingSweep, PreservesSemanticsForAnySplitPoint) {
  applyAndCheckSemantics(
      "      PROGRAM MAIN\n"
      "      REAL A(20)\n"
      "      S = 0.0\n"
      "      DO I = 1, 20\n"
      "        A(I) = FLOAT(I)\n"
      "        S = S + A(I)\n"
      "      ENDDO\n"
      "      WRITE(6, *) S\n"
      "      END\n",
      "Loop Splitting", [](Workspace& ws) {
        Target t;
        t.loop = nthLoop(ws, 0);
        t.splitPoint = GetParam();
        return t;
      });
}

INSTANTIATE_TEST_SUITE_P(Points, SplittingSweep,
                         ::testing::Values(-5, 0, 1, 7, 19, 20, 50));

TEST(Skewing, PreservesSemantics) {
  applyAndCheckSemantics(
      "      PROGRAM MAIN\n"
      "      REAL A(10, 30)\n"
      "      DO I = 1, 10\n"
      "        DO J = 1, 10\n"
      "          A(I, J) = FLOAT(I*J)\n"
      "        ENDDO\n"
      "      ENDDO\n"
      "      WRITE(6, *) A(3, 7), A(10, 10)\n"
      "      END\n",
      "Loop Skewing", [](Workspace& ws) {
        Target t;
        t.loop = nthLoop(ws, 0);
        t.factor = 1;
        return t;
      });
}

TEST(Alignment, MakesRecurrencePairParallel) {
  const char* src =
      "      PROGRAM MAIN\n"
      "      REAL A(22), C(22)\n"
      "      A(1) = 1.0\n"
      "      C(1) = 0.0\n"
      "      DO I = 2, 20\n"
      "        A(I) = FLOAT(I)*3.0\n"
      "        C(I) = A(I - 1) + 1.0\n"
      "      ENDDO\n"
      "      WRITE(6, *) A(20), C(20), C(2)\n"
      "      END\n";
  Fixture f = make(src);
  const auto* tr = Registry::instance().byName("Loop Alignment");
  Target t;
  t.loop = nthLoop(*f.ws, 0);
  Advice a = tr->advise(*f.ws, t);
  ASSERT_TRUE(a.safe) << a.explanation;
  EXPECT_TRUE(a.profitable);
  applyAndCheckSemantics(src, "Loop Alignment", [](Workspace& ws) {
    Target t2;
    t2.loop = nthLoop(ws, 0);
    return t2;
  });
}

// ---------------------------------------------------------------------------
// Dependence breaking
// ---------------------------------------------------------------------------

TEST(ScalarExpansion, MakesLoopParallelAndPreservesSemantics) {
  const char* src =
      "      PROGRAM MAIN\n"
      "      REAL A(15)\n"
      "      DO I = 1, 15\n"
      "        A(I) = FLOAT(I)\n"
      "      ENDDO\n"
      "      DO I = 1, 15\n"
      "        T = A(I)*2.0\n"
      "        A(I) = T + 1.0\n"
      "      ENDDO\n"
      "      WRITE(6, *) A(15)\n"
      "      END\n";
  // With no privatization (ablation off), T's deps serialize the loop;
  // scalar expansion materially removes them.
  Fixture f = make(src);
  f.ws->actx.usePrivatization = false;
  f.ws->reanalyze();
  auto* loop = f.ws->model->topLevelLoops()[1];
  EXPECT_FALSE(f.ws->graph->parallelizable(*loop));
  const auto* tr = Registry::instance().byName("Scalar Expansion");
  Target t;
  t.loop = loop->stmt->id;
  t.variable = "T";
  Advice a = tr->advise(*f.ws, t);
  ASSERT_TRUE(a.safe) << a.explanation;
  std::string error;
  ASSERT_TRUE(tr->apply(*f.ws, t, &error)) << error;
  loop = f.ws->model->topLevelLoops()[1];
  EXPECT_TRUE(f.ws->graph->parallelizable(*loop));

  applyAndCheckSemantics(src, "Scalar Expansion", [](Workspace& ws) {
    Target t2;
    t2.loop = nthLoop(ws, 1);
    t2.variable = "T";
    return t2;
  });
}

TEST(ScalarExpansion, LastValueCopyOut) {
  applyAndCheckSemantics(
      "      PROGRAM MAIN\n"
      "      REAL A(9)\n"
      "      DO I = 1, 9\n"
      "        A(I) = FLOAT(I)\n"
      "      ENDDO\n"
      "      DO I = 1, 9\n"
      "        T = A(I) + 1.0\n"
      "        A(I) = T*2.0\n"
      "      ENDDO\n"
      "      WRITE(6, *) T\n"
      "      END\n",
      "Scalar Expansion", [](Workspace& ws) {
        Target t;
        t.loop = nthLoop(ws, 1);
        t.variable = "T";
        return t;
      });
}

TEST(ScalarExpansion, RefusesAccumulator) {
  Fixture f = make(
      "      PROGRAM MAIN\n"
      "      REAL A(9)\n"
      "      S = 0.0\n"
      "      DO I = 1, 9\n"
      "        S = S + FLOAT(I)\n"
      "      ENDDO\n"
      "      WRITE(6, *) S\n"
      "      END\n");
  const auto* tr = Registry::instance().byName("Scalar Expansion");
  Target t;
  t.loop = nthLoop(*f.ws, 0);
  t.variable = "S";
  EXPECT_FALSE(tr->advise(*f.ws, t).safe);
}

TEST(ArrayRenaming, BreaksAntiDependence) {
  const char* src =
      "      PROGRAM MAIN\n"
      "      REAL A(21)\n"
      "      DO I = 1, 21\n"
      "        A(I) = FLOAT(I)\n"
      "      ENDDO\n"
      "      DO I = 1, 20\n"
      "        A(I) = A(I + 1)*2.0\n"
      "      ENDDO\n"
      "      WRITE(6, *) A(1), A(20)\n"
      "      END\n";
  Fixture f = make(src);
  auto* loop = f.ws->model->topLevelLoops()[1];
  EXPECT_FALSE(f.ws->graph->parallelizable(*loop));
  const auto* tr = Registry::instance().byName("Array Renaming");
  Target t;
  t.loop = loop->stmt->id;
  t.variable = "A";
  Advice a = tr->advise(*f.ws, t);
  ASSERT_TRUE(a.safe) << a.explanation;
  std::string error;
  ASSERT_TRUE(tr->apply(*f.ws, t, &error)) << error;
  // The (second) original loop is now parallel.
  bool anyParallelWithWrite = false;
  for (auto* l : f.ws->model->topLevelLoops()) {
    if (l->stmt->body.size() == 1 && f.ws->graph->parallelizable(*l)) {
      anyParallelWithWrite = true;
    }
  }
  EXPECT_TRUE(anyParallelWithWrite);

  applyAndCheckSemantics(src, "Array Renaming", [](Workspace& ws) {
    Target t2;
    t2.loop = nthLoop(ws, 1);
    t2.variable = "A";
    return t2;
  });
}

TEST(ArrayRenaming, RefusesFlowDependence) {
  Fixture f = make(
      "      PROGRAM MAIN\n"
      "      REAL A(21)\n"
      "      DO I = 2, 20\n"
      "        A(I) = A(I - 1)*2.0\n"
      "      ENDDO\n"
      "      END\n");
  const auto* tr = Registry::instance().byName("Array Renaming");
  Target t;
  t.loop = nthLoop(*f.ws, 0);
  t.variable = "A";
  EXPECT_FALSE(tr->advise(*f.ws, t).safe);
}

// ---------------------------------------------------------------------------
// Memory optimizing
// ---------------------------------------------------------------------------

TEST(StripMining, PreservesSemantics) {
  applyAndCheckSemantics(
      "      PROGRAM MAIN\n"
      "      REAL A(23)\n"
      "      DO I = 1, 23\n"
      "        A(I) = FLOAT(I)*1.5\n"
      "      ENDDO\n"
      "      WRITE(6, *) A(1), A(17), A(23)\n"
      "      END\n",
      "Strip Mining", [](Workspace& ws) {
        Target t;
        t.loop = nthLoop(ws, 0);
        t.factor = 5;
        return t;
      });
}

class UnrollSweep : public ::testing::TestWithParam<long long> {};

TEST_P(UnrollSweep, PreservesSemanticsForAnyFactor) {
  // Trip count 23 is deliberately not divisible by most factors.
  applyAndCheckSemantics(
      "      PROGRAM MAIN\n"
      "      REAL A(24)\n"
      "      A(1) = 1.0\n"
      "      DO I = 2, 23\n"
      "        A(I) = A(I - 1) + FLOAT(I)\n"
      "      ENDDO\n"
      "      WRITE(6, *) A(23)\n"
      "      END\n",
      "Loop Unrolling", [](Workspace& ws) {
        Target t;
        t.loop = nthLoop(ws, 0);
        t.factor = GetParam();
        return t;
      });
}

INSTANTIATE_TEST_SUITE_P(Factors, UnrollSweep,
                         ::testing::Values(2, 3, 4, 5, 7, 11));

TEST(UnrollAndJam, PreservesSemantics) {
  applyAndCheckSemantics(
      "      PROGRAM MAIN\n"
      "      REAL A(9, 9), B(9, 9)\n"
      "      DO I = 1, 9\n"
      "        DO J = 1, 9\n"
      "          B(I, J) = FLOAT(I + J)\n"
      "        ENDDO\n"
      "      ENDDO\n"
      "      DO I = 1, 9\n"
      "        DO J = 1, 9\n"
      "          A(I, J) = B(I, J)*2.0\n"
      "        ENDDO\n"
      "      ENDDO\n"
      "      WRITE(6, *) A(9, 9), A(4, 6)\n"
      "      END\n",
      "Unroll and Jam", [](Workspace& ws) {
        Target t;
        t.loop = nthLoop(ws, 2);
        t.factor = 2;
        return t;
      });
}

TEST(ScalarReplacement, ReplacesInvariantRef) {
  const char* src =
      "      PROGRAM MAIN\n"
      "      REAL A(10), B(10)\n"
      "      K = 3\n"
      "      DO I = 1, 10\n"
      "        B(I) = FLOAT(I)\n"
      "      ENDDO\n"
      "      DO I = 1, 10\n"
      "        B(I) = B(I) + A(K)\n"
      "      ENDDO\n"
      "      WRITE(6, *) B(10)\n"
      "      END\n";
  applyAndCheckSemantics(src, "Scalar Replacement", [](Workspace& ws) {
    Target t;
    t.loop = nthLoop(ws, 1);
    t.variable = "A";
    return t;
  });
}

// ---------------------------------------------------------------------------
// Sequential <-> Parallel with the race detector as ground truth
// ---------------------------------------------------------------------------

TEST(Parallelize, SafeLoopRunsWithoutRaces) {
  const char* src =
      "      PROGRAM MAIN\n"
      "      REAL A(30), B(30)\n"
      "      DO I = 1, 30\n"
      "        B(I) = FLOAT(I)\n"
      "      ENDDO\n"
      "      DO I = 1, 30\n"
      "        A(I) = B(I)*B(I)\n"
      "      ENDDO\n"
      "      WRITE(6, *) A(30)\n"
      "      END\n";
  Fixture f = make(src);
  const auto* tr = Registry::instance().byName("Sequential to Parallel");
  Target t;
  t.loop = nthLoop(*f.ws, 1);
  Advice a = tr->advise(*f.ws, t);
  ASSERT_TRUE(a.safe) << a.explanation;
  std::string error;
  ASSERT_TRUE(tr->apply(*f.ws, t, &error)) << error;
  // The race detector agrees with the static analysis.
  interp::Machine m(*f.prog);
  auto r = m.run();
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_TRUE(r.races.empty());
}

TEST(Parallelize, RefusedForRecurrenceAndDetectorAgrees) {
  const char* src =
      "      PROGRAM MAIN\n"
      "      REAL A(30)\n"
      "      A(1) = 1.0\n"
      "      DO I = 2, 30\n"
      "        A(I) = A(I - 1) + 1.0\n"
      "      ENDDO\n"
      "      WRITE(6, *) A(30)\n"
      "      END\n";
  Fixture f = make(src);
  const auto* tr = Registry::instance().byName("Sequential to Parallel");
  Target t;
  t.loop = nthLoop(*f.ws, 0);
  EXPECT_FALSE(tr->advise(*f.ws, t).safe);
  // Force it anyway (simulating a user overriding): the dynamic detector
  // reports a race.
  f.ws->model->topLevelLoops()[0]->stmt->isParallel = true;
  interp::Machine m(*f.prog);
  auto r = m.run();
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_FALSE(r.races.empty());
}

// ---------------------------------------------------------------------------
// Control flow
// ---------------------------------------------------------------------------

const char* kNeossProgram =
    "      PROGRAM MAIN\n"
    "      REAL DENV(8), RES(9)\n"
    "      DO I = 1, 8\n"
    "        DENV(I) = FLOAT(I) - 4.0\n"
    "      ENDDO\n"
    "      RES(9) = 0.0\n"
    "      DO 50 K = 1, 8\n"
    "        IF (DENV(K) - RES(9)) 100, 10, 10\n"
    "   10   CONTINUE\n"
    "        DENV(K) = DENV(K)*2.0\n"
    "        GOTO 101\n"
    "  100   DENV(K) = 0.0\n"
    "  101   RES(K) = DENV(K)\n"
    "   50 CONTINUE\n"
    "      WRITE(6, *) RES(1), RES(4), RES(8)\n"
    "      END\n";

TEST(ControlFlow, ArithmeticIfRemovalPreservesSemantics) {
  applyAndCheckSemantics(kNeossProgram, "Arithmetic IF Removal",
                         [](Workspace& ws) {
                           Target t;
                           t.stmt =
                               nthStmt(ws, StmtKind::ArithmeticIf, 0);
                           return t;
                         });
}

TEST(ControlFlow, FullNeossStructuringPipeline) {
  // Step 1: remove the arithmetic IF; step 2: structure the remaining
  // IF-GOTO pattern into IF-THEN-ELSE; the loop body ends up free of GOTOs
  // — the hand transformation §5.3 describes, automated.
  auto original = parse(kNeossProgram);
  interp::Machine m0(*original);
  auto r0 = m0.run();
  ASSERT_TRUE(r0.ok);

  Fixture f = make(kNeossProgram);
  const auto* aifr = Registry::instance().byName("Arithmetic IF Removal");
  Target t1;
  t1.stmt = nthStmt(*f.ws, StmtKind::ArithmeticIf, 0);
  std::string error;
  ASSERT_TRUE(aifr->apply(*f.ws, t1, &error)) << error;

  // Find the IF-GOTO produced by step 1 and structure it.
  const auto* cfs = Registry::instance().byName("Control Flow Structuring");
  StmtId ifGoto = fortran::kInvalidStmt;
  for (const Stmt* s : f.ws->model->allStmts()) {
    if (s->kind == StmtKind::If && s->isLogicalIf &&
        s->arms[0].body.size() == 1 &&
        s->arms[0].body[0]->kind == StmtKind::Goto) {
      ifGoto = s->id;
      break;
    }
  }
  ASSERT_NE(ifGoto, fortran::kInvalidStmt);
  Target t2;
  t2.stmt = ifGoto;
  Advice a = cfs->advise(*f.ws, t2);
  ASSERT_TRUE(a.safe) << a.explanation;
  ASSERT_TRUE(cfs->apply(*f.ws, t2, &error)) << error;

  // No GOTOs or arithmetic IFs remain in the loop body.
  int gotos = 0;
  f.ws->proc.forEachStmt([&](const Stmt& s) {
    if (s.kind == StmtKind::Goto || s.kind == StmtKind::ArithmeticIf) {
      ++gotos;
    }
  });
  EXPECT_EQ(gotos, 0) << fortran::printProcedure(f.ws->proc);

  interp::Machine m1(*f.prog);
  auto r1 = m1.run();
  ASSERT_TRUE(r1.ok) << r1.error;
  EXPECT_TRUE(r0.outputEquals(r1))
      << fortran::printProgram(*f.prog);
}

// ---------------------------------------------------------------------------
// Reduction recognition
// ---------------------------------------------------------------------------

TEST(Reduction, RecognizedAndParallelizesMainLoop) {
  const char* src =
      "      PROGRAM MAIN\n"
      "      REAL A(25)\n"
      "      S = 0.0\n"
      "      DO I = 1, 25\n"
      "        A(I) = FLOAT(I)\n"
      "      ENDDO\n"
      "      DO I = 1, 25\n"
      "        S = S + A(I)*A(I)\n"
      "      ENDDO\n"
      "      WRITE(6, *) S\n"
      "      END\n";
  Fixture f = make(src);
  auto* loop = f.ws->model->topLevelLoops()[1];
  EXPECT_FALSE(f.ws->graph->parallelizable(*loop));
  const auto* tr = Registry::instance().byName("Reduction Recognition");
  Target t;
  t.loop = loop->stmt->id;
  Advice a = tr->advise(*f.ws, t);
  ASSERT_TRUE(a.safe) << a.explanation;
  EXPECT_TRUE(a.profitable);
  std::string error;
  ASSERT_TRUE(tr->apply(*f.ws, t, &error)) << error;
  // The main loop (now computing partials) is parallelizable.
  loop = f.ws->model->topLevelLoops()[1];
  EXPECT_TRUE(f.ws->graph->parallelizable(*loop))
      << fortran::printProcedure(f.ws->proc);

  applyAndCheckSemantics(src, "Reduction Recognition", [](Workspace& ws) {
    Target t2;
    t2.loop = nthLoop(ws, 1);
    return t2;
  });
}

TEST(Reduction, RefusesWhenAccumulatorReadElsewhere) {
  Fixture f = make(
      "      PROGRAM MAIN\n"
      "      REAL A(25)\n"
      "      S = 0.0\n"
      "      DO I = 1, 25\n"
      "        S = S + FLOAT(I)\n"
      "        A(I) = S\n"
      "      ENDDO\n"
      "      WRITE(6, *) A(25)\n"
      "      END\n");
  const auto* tr = Registry::instance().byName("Reduction Recognition");
  Target t;
  t.loop = nthLoop(*f.ws, 0);
  EXPECT_FALSE(tr->advise(*f.ws, t).applicable);
}

TEST(Reduction, SubtractionForm) {
  applyAndCheckSemantics(
      "      PROGRAM MAIN\n"
      "      REAL A(12)\n"
      "      S = 100.0\n"
      "      DO I = 1, 12\n"
      "        A(I) = FLOAT(I)\n"
      "      ENDDO\n"
      "      DO I = 1, 12\n"
      "        S = S - A(I)\n"
      "      ENDDO\n"
      "      WRITE(6, *) S\n"
      "      END\n",
      "Reduction Recognition", [](Workspace& ws) {
        Target t;
        t.loop = nthLoop(ws, 1);
        return t;
      });
}

// ---------------------------------------------------------------------------
// Interprocedural loop motion (§5.3)
// ---------------------------------------------------------------------------

const char* kExtractProgram =
    "      PROGRAM MAIN\n"
    "      REAL FLN(40, 6)\n"
    "      DO L = 1, 6\n"
    "        CALL FL22(FLN, 40, L)\n"
    "      ENDDO\n"
    "      WRITE(6, *) FLN(10, 3), FLN(40, 6)\n"
    "      END\n"
    "      SUBROUTINE FL22(FLN, N, L)\n"
    "      REAL FLN(40, 6)\n"
    "      DO I = 1, N\n"
    "        FLN(I, L) = FLOAT(I*L)\n"
    "      ENDDO\n"
    "      END\n";

TEST(Extraction, CreatesBodyProcedureAndPreservesSemantics) {
  auto original = parse(kExtractProgram);
  interp::Machine m0(*original);
  auto r0 = m0.run();
  ASSERT_TRUE(r0.ok);

  Fixture f = make(kExtractProgram, "MAIN");
  const auto* tr = Registry::instance().byName("Loop Extraction");
  Target t;
  t.stmt = nthStmt(*f.ws, StmtKind::Call, 0);
  Advice a = tr->advise(*f.ws, t);
  ASSERT_TRUE(a.safe) << a.explanation;
  std::string error;
  ASSERT_TRUE(tr->apply(*f.ws, t, &error)) << error;
  EXPECT_NE(f.prog->findUnit("FL22$B"), nullptr);
  // The call site now contains a double nest: L loop around the extracted
  // I loop.
  ASSERT_FALSE(f.ws->model->topLevelLoops().empty());
  auto* outer = f.ws->model->topLevelLoops()[0];
  ASSERT_EQ(outer->children.size(), 1u);

  interp::Machine m1(*f.prog);
  auto r1 = m1.run();
  ASSERT_TRUE(r1.ok) << r1.error << fortran::printProgram(*f.prog);
  EXPECT_TRUE(r0.outputEquals(r1)) << fortran::printProgram(*f.prog);
}

TEST(Embedding, MovesLoopIntoCalleeAndPreservesSemantics) {
  auto original = parse(kExtractProgram);
  interp::Machine m0(*original);
  auto r0 = m0.run();
  ASSERT_TRUE(r0.ok);

  Fixture f = make(kExtractProgram, "MAIN");
  const auto* tr = Registry::instance().byName("Loop Embedding");
  Target t;
  t.loop = nthLoop(*f.ws, 0);
  Advice a = tr->advise(*f.ws, t);
  ASSERT_TRUE(a.safe) << a.explanation;
  std::string error;
  ASSERT_TRUE(tr->apply(*f.ws, t, &error)) << error;
  EXPECT_NE(f.prog->findUnit("FL22$E"), nullptr);
  // The loop is gone from MAIN.
  EXPECT_TRUE(f.ws->model->topLevelLoops().empty());

  interp::Machine m1(*f.prog);
  auto r1 = m1.run();
  ASSERT_TRUE(r1.ok) << r1.error << fortran::printProgram(*f.prog);
  EXPECT_TRUE(r0.outputEquals(r1)) << fortran::printProgram(*f.prog);
}

// ---------------------------------------------------------------------------
// Statement deletion / addition
// ---------------------------------------------------------------------------

TEST(StatementEdit, DeletionRefusedWhenValueUsed) {
  Fixture f = make(
      "      PROGRAM MAIN\n"
      "      REAL A(5), B(5)\n"
      "      DO I = 1, 5\n"
      "        A(I) = FLOAT(I)\n"
      "        B(I) = A(I)\n"
      "      ENDDO\n"
      "      WRITE(6, *) B(5)\n"
      "      END\n");
  const auto* tr = Registry::instance().byName("Statement Deletion");
  Target t;
  t.stmt = nthStmt(*f.ws, StmtKind::Assign, 0);
  EXPECT_FALSE(tr->advise(*f.ws, t).safe);
}

TEST(StatementEdit, AdditionInsertsContinue) {
  Fixture f = make(
      "      PROGRAM MAIN\n"
      "      X = 1.0\n"
      "      END\n");
  const auto* tr = Registry::instance().byName("Statement Addition");
  Target t;
  t.stmt = nthStmt(*f.ws, StmtKind::Assign, 0);
  std::string error;
  ASSERT_TRUE(tr->apply(*f.ws, t, &error)) << error;
  EXPECT_EQ(f.ws->proc.body.size(), 2u);
  EXPECT_EQ(f.ws->proc.body[1]->kind, StmtKind::Continue);
}

}  // namespace
}  // namespace ps::transform
