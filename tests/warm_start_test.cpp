// Warm-start determinism suite for the persistent program database.
//
// For every deck:
//   1. An unmodified reopen must be pure reuse: every summary and graph
//      record hits, ZERO dependence tests run, and the snapshot (every
//      edge field, degradation report, deep audit) is bit-identical to
//      the cold analysis at 1/2/4/8 threads.
//   2. After one fixed-seed edit (the shared edit-storm generator), a warm
//      reopen of the edited source must equal a from-scratch analysis of
//      the same text at every thread count: the edited procedure's key
//      misses and is recomputed through the dirty-set path; everything the
//      edit didn't invalidate restores from disk.
//
// Sessions that parse the same text assign the same statement ids, so the
// snapshots are directly comparable strings.

#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "fortran/pretty.h"
#include "ped/session.h"
#include "support/diagnostics.h"
#include "workloads/harness.h"
#include "workloads/workloads.h"

namespace ps::workloads {
namespace {

class ScopedFile {
 public:
  explicit ScopedFile(std::string path) : path_(std::move(path)) {}
  ~ScopedFile() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

class WarmStart : public ::testing::TestWithParam<std::string> {};

TEST_P(WarmStart, UnmodifiedReopenIsPureReuse) {
  const std::string deck = GetParam();
  const Workload* w = byName(deck);
  ASSERT_NE(w, nullptr);

  auto cold = loadDeck(deck);
  ASSERT_NE(cold, nullptr);
  cold->analyzeParallel(1);
  const std::string want = analysisSnapshot(*cold);
  const std::size_t nProcs = cold->procedureNames().size();

  ScopedFile store(deck + ".unmod.pspdb");
  ASSERT_TRUE(cold->savePdb(store.path()));
  EXPECT_GT(cold->pdbStats().bytesWritten, 0u);

  for (int t : {1, 2, 4, 8, 16}) {
    DiagnosticEngine diags;
    auto warm = ped::Session::openWarm(w->source, store.path(), diags, t);
    ASSERT_NE(warm, nullptr) << deck << " @" << t << " threads";
    EXPECT_FALSE(diags.hasErrors());

    const ped::PdbStats& ps = warm->pdbStats();
    EXPECT_FALSE(ps.storeRejected) << deck << " @" << t;
    EXPECT_EQ(ps.quarantined, 0u) << deck << " @" << t;
    EXPECT_EQ(ps.graphHits, nProcs) << deck << " @" << t;
    EXPECT_EQ(ps.graphMisses, 0u) << deck << " @" << t;
    EXPECT_EQ(ps.summaryMisses, 0u) << deck << " @" << t;
    // The acceptance bar: a warm open of an unmodified deck runs zero
    // dependence tests.
    EXPECT_EQ(ps.testsRunLive, 0) << deck << " @" << t;
    EXPECT_EQ(warm->analysisStats().testsRequested, 0) << deck << " @" << t;

    EXPECT_EQ(want, analysisSnapshot(*warm)) << deck << " @" << t;
  }
}

TEST_P(WarmStart, EditThenReopenMatchesScratchAtEveryThreadCount) {
  const std::string deck = GetParam();

  auto base = loadDeck(deck);
  ASSERT_NE(base, nullptr);
  base->analyzeParallel(1);
  ScopedFile store(deck + ".edit.pspdb");
  ASSERT_TRUE(base->savePdb(store.path()));

  // One deterministic edit from the shared generator, applied to the
  // saving session; the edited TEXT is what later sessions parse.
  Rng rng(0x9DB5u ^ static_cast<unsigned>(std::hash<std::string>{}(deck)));
  EditStep step;
  ASSERT_TRUE(nextStep(*base, rng, &step)) << deck << ": no editable stmt";
  ASSERT_TRUE(applyStep(*base, step)) << deck;
  const std::string editedSrc = fortran::printProgram(base->program());

  // From-scratch reference over the edited text (fresh parse, fresh ids).
  DiagnosticEngine coldDiags;
  auto cold = ped::Session::load(editedSrc, coldDiags);
  ASSERT_NE(cold, nullptr);
  ASSERT_FALSE(coldDiags.hasErrors());
  cold->analyzeParallel(1);
  const std::string want = analysisSnapshot(*cold);

  for (int t : {1, 2, 4, 8, 16}) {
    DiagnosticEngine diags;
    auto warm = ped::Session::openWarm(editedSrc, store.path(), diags, t);
    ASSERT_NE(warm, nullptr) << deck << " @" << t << " threads";
    EXPECT_FALSE(diags.hasErrors());

    const ped::PdbStats& ps = warm->pdbStats();
    EXPECT_FALSE(ps.storeRejected) << deck << " @" << t;
    EXPECT_EQ(ps.quarantined, 0u) << deck << " @" << t;
    // The edited procedure's text changed, so its graph key must miss and
    // recompute; the store must never serve it stale.
    EXPECT_GE(ps.graphMisses, 1u) << deck << " @" << t;

    EXPECT_EQ(want, analysisSnapshot(*warm)) << deck << " @" << t;
  }
}

std::vector<std::string> deckNames() {
  std::vector<std::string> names;
  for (const Workload& w : all()) names.push_back(w.name);
  return names;
}

INSTANTIATE_TEST_SUITE_P(AllDecks, WarmStart,
                         ::testing::ValuesIn(deckNames()));

}  // namespace
}  // namespace ps::workloads
