#include <gtest/gtest.h>

#include "cfg/control_dep.h"
#include "cfg/flow_graph.h"
#include "dataflow/constants.h"
#include "dataflow/linear.h"
#include "dataflow/liveness.h"
#include "dataflow/privatize.h"
#include "dataflow/reaching.h"
#include "dataflow/symbolic.h"
#include "fortran/parser.h"
#include "support/diagnostics.h"

namespace ps::dataflow {
namespace {

using fortran::Program;
using fortran::Stmt;
using fortran::StmtKind;

struct Analyzed {
  std::unique_ptr<Program> prog;
  std::unique_ptr<ir::ProcedureModel> model;
  cfg::FlowGraph graph;
  ReachingDefs reaching;
  Liveness liveness;
  cfg::ControlDependence cdeps;
};

Analyzed analyze(std::string_view src) {
  ps::DiagnosticEngine diags;
  Analyzed a;
  a.prog = fortran::parseSource(src, diags);
  EXPECT_FALSE(diags.hasErrors()) << diags.dump();
  a.model = std::make_unique<ir::ProcedureModel>(*a.prog->units[0]);
  a.graph = cfg::FlowGraph::build(*a.model);
  a.reaching = ReachingDefs::build(a.graph, *a.model);
  a.liveness = Liveness::build(a.graph, *a.model);
  a.cdeps = cfg::ControlDependence::build(a.graph);
  return a;
}

// ---------------------------------------------------------------------------
// Reaching definitions
// ---------------------------------------------------------------------------

TEST(Reaching, StraightLineKill) {
  auto a = analyze(
      "      SUBROUTINE S(Y)\n"
      "      X = 1.0\n"
      "      X = 2.0\n"
      "      Y = X\n"
      "      END\n");
  const auto& body = a.prog->units[0]->body;
  auto defs = a.reaching.reachingAt(body[2]->id, "X");
  ASSERT_EQ(defs.size(), 1u);
  EXPECT_EQ(a.reaching.definitions()[defs[0]].stmt, body[1].get());
}

TEST(Reaching, BothBranchesReach) {
  auto a = analyze(
      "      SUBROUTINE S(C, Y)\n"
      "      IF (C .GT. 0.0) THEN\n"
      "        X = 1.0\n"
      "      ELSE\n"
      "        X = 2.0\n"
      "      ENDIF\n"
      "      Y = X\n"
      "      END\n");
  const auto& body = a.prog->units[0]->body;
  auto defs = a.reaching.reachingAt(body[1]->id, "X");
  EXPECT_EQ(defs.size(), 2u);
}

TEST(Reaching, LoopCarriedDefReaches) {
  auto a = analyze(
      "      SUBROUTINE S(Y, N)\n"
      "      X = 0.0\n"
      "      DO I = 1, N\n"
      "        Y = X\n"
      "        X = Y + 1.0\n"
      "      ENDDO\n"
      "      END\n");
  const Stmt* use = a.prog->units[0]->body[1]->body[0].get();
  auto defs = a.reaching.reachingAt(use->id, "X");
  // Both the pre-loop def and the in-loop def reach the use.
  EXPECT_EQ(defs.size(), 2u);
}

TEST(Reaching, ArrayStoreDoesNotKill) {
  auto a = analyze(
      "      SUBROUTINE S(A, Y, I)\n"
      "      REAL A(10)\n"
      "      A(1) = 1.0\n"
      "      A(I) = 2.0\n"
      "      Y = A(1)\n"
      "      END\n");
  const auto& body = a.prog->units[0]->body;
  auto defs = a.reaching.reachingAt(body[2]->id, "A");
  EXPECT_EQ(defs.size(), 2u);  // both stores reach
}

TEST(Reaching, UniqueReachingAssignment) {
  auto a = analyze(
      "      SUBROUTINE S(JMAX, A, N)\n"
      "      REAL A(N)\n"
      "      JM = JMAX - 1\n"
      "      DO I = 1, N\n"
      "        A(I) = A(JM)\n"
      "      ENDDO\n"
      "      END\n");
  const Stmt* loop = a.prog->units[0]->body[1].get();
  const Stmt* def = nullptr;
  EXPECT_TRUE(a.reaching.uniqueReachingAssignment(loop->id, "JM", &def));
  EXPECT_EQ(def, a.prog->units[0]->body[0].get());
}

TEST(Reaching, DefUseChains) {
  auto a = analyze(
      "      SUBROUTINE S(Y, Z)\n"
      "      X = 1.0\n"
      "      Y = X\n"
      "      Z = X\n"
      "      END\n");
  // The def of X should have two uses.
  int defIdx = -1;
  for (std::size_t i = 0; i < a.reaching.definitions().size(); ++i) {
    if (a.reaching.definitions()[i].name == "X") defIdx = static_cast<int>(i);
  }
  ASSERT_GE(defIdx, 0);
  EXPECT_EQ(a.reaching.defUse()[defIdx].size(), 2u);
}

// ---------------------------------------------------------------------------
// Liveness
// ---------------------------------------------------------------------------

TEST(Liveness, DeadAfterLastUse) {
  auto a = analyze(
      "      SUBROUTINE S(Y)\n"
      "      T = 1.0\n"
      "      Y = T\n"
      "      Y = Y + 1.0\n"
      "      END\n");
  const auto& body = a.prog->units[0]->body;
  EXPECT_TRUE(a.liveness.liveIn(body[1]->id).count("T"));
  EXPECT_FALSE(a.liveness.liveOut(body[1]->id).count("T"));
}

TEST(Liveness, ParamsLiveAtExit) {
  auto a = analyze(
      "      SUBROUTINE S(Y)\n"
      "      Y = 1.0\n"
      "      END\n");
  EXPECT_TRUE(a.liveness.liveOut(a.prog->units[0]->body[0]->id).count("Y"));
}

TEST(Liveness, TempNotLiveAfterLoop) {
  auto a = analyze(
      "      SUBROUTINE S(A, N)\n"
      "      REAL A(N)\n"
      "      DO I = 1, N\n"
      "        T = A(I)*2.0\n"
      "        A(I) = T + 1.0\n"
      "      ENDDO\n"
      "      END\n");
  auto* loop = a.model->topLevelLoops()[0];
  EXPECT_FALSE(a.liveness.liveAfterLoop(*loop, "T"));
  EXPECT_TRUE(a.liveness.liveAfterLoop(*loop, "A"));
}

TEST(Liveness, ScalarLiveAfterLoopWhenUsedLater) {
  auto a = analyze(
      "      SUBROUTINE S(A, N, OUT)\n"
      "      REAL A(N)\n"
      "      DO I = 1, N\n"
      "        T = A(I)\n"
      "      ENDDO\n"
      "      OUT = T\n"
      "      END\n");
  auto* loop = a.model->topLevelLoops()[0];
  EXPECT_TRUE(a.liveness.liveAfterLoop(*loop, "T"));
}

// ---------------------------------------------------------------------------
// Constant propagation
// ---------------------------------------------------------------------------

TEST(Constants, ParameterSeedsEntry) {
  auto a = analyze(
      "      SUBROUTINE S(A)\n"
      "      PARAMETER (N = 100)\n"
      "      REAL A(100)\n"
      "      A(1) = FLOAT(N)\n"
      "      END\n");
  ConstantAnalysis ca =
      ConstantAnalysis::build(a.graph, *a.model, {});
  const auto& body = a.prog->units[0]->body;
  auto v = ca.envAt(body[0]->id).find("N");
  ASSERT_NE(v, ca.envAt(body[0]->id).end());
  EXPECT_EQ(v->second.kind, ConstVal::Kind::IntConst);
  EXPECT_EQ(v->second.i, 100);
}

TEST(Constants, StraightLinePropagation) {
  auto a = analyze(
      "      SUBROUTINE S(A)\n"
      "      REAL A(100)\n"
      "      N = 10\n"
      "      M = N*2 + 1\n"
      "      A(M) = 0.0\n"
      "      END\n");
  ConstantAnalysis ca = ConstantAnalysis::build(a.graph, *a.model, {});
  const auto& body = a.prog->units[0]->body;
  auto env = ca.envAt(body[2]->id);
  EXPECT_EQ(env["M"].i, 21);
}

TEST(Constants, MergeOfDifferentValuesIsBottom) {
  auto a = analyze(
      "      SUBROUTINE S(C, A)\n"
      "      REAL A(100)\n"
      "      IF (C .GT. 0.0) THEN\n"
      "        N = 1\n"
      "      ELSE\n"
      "        N = 2\n"
      "      ENDIF\n"
      "      A(N) = 0.0\n"
      "      END\n");
  ConstantAnalysis ca = ConstantAnalysis::build(a.graph, *a.model, {});
  const auto& body = a.prog->units[0]->body;
  auto env = ca.envAt(body[1]->id);
  EXPECT_EQ(env["N"].kind, ConstVal::Kind::Bottom);
}

TEST(Constants, ReadMakesBottom) {
  auto a = analyze(
      "      SUBROUTINE S(A)\n"
      "      REAL A(100)\n"
      "      N = 5\n"
      "      READ *, N\n"
      "      A(N) = 0.0\n"
      "      END\n");
  ConstantAnalysis ca = ConstantAnalysis::build(a.graph, *a.model, {});
  const auto& body = a.prog->units[0]->body;
  { auto env = ca.envAt(body[2]->id); EXPECT_EQ(env["N"].kind, ConstVal::Kind::Bottom); }
}

TEST(Constants, InheritedInterproceduralConstants) {
  auto a = analyze(
      "      SUBROUTINE S(A)\n"
      "      REAL A(100)\n"
      "      A(N) = 0.0\n"
      "      END\n");
  ConstEnv inherited;
  inherited["N"] = ConstVal::ofInt(7);
  ConstantAnalysis ca = ConstantAnalysis::build(a.graph, *a.model, inherited);
  const auto& body = a.prog->units[0]->body;
  { auto env = ca.envAt(body[0]->id); EXPECT_EQ(env["N"].i, 7); }
}

TEST(Constants, EvaluateRelational) {
  ConstEnv env;
  env["A"] = ConstVal::ofInt(3);
  ps::DiagnosticEngine diags;
  auto prog = fortran::parseSource(
      "      SUBROUTINE S\n      L = A .LT. 5\n      END\n", diags);
  auto v = ConstantAnalysis::evaluate(*prog->units[0]->body[0]->rhs, env);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->kind, ConstVal::Kind::LogicalConst);
  EXPECT_TRUE(v->b);
}

// ---------------------------------------------------------------------------
// Linear forms
// ---------------------------------------------------------------------------

fortran::ExprPtr parseExprFrom(const std::string& rhs) {
  ps::DiagnosticEngine diags;
  auto prog =
      fortran::parseSource("      SUBROUTINE S\n      X = " + rhs +
                           "\n      END\n", diags);
  EXPECT_FALSE(diags.hasErrors()) << diags.dump();
  return std::move(prog->units[0]->body[0]->rhs);
}

TEST(Linear, SimpleAffine) {
  auto e = parseExprFrom("2*I + J - 3");
  LinearExpr f = linearize(*e);
  EXPECT_TRUE(f.affine);
  EXPECT_EQ(f.coefOf("I"), 2);
  EXPECT_EQ(f.coefOf("J"), 1);
  EXPECT_EQ(f.constant, -3);
}

TEST(Linear, CancellationInSubtract) {
  auto e1 = parseExprFrom("I + MCN");
  auto e2 = parseExprFrom("I");
  LinearExpr d = subtract(linearize(*e1), linearize(*e2));
  EXPECT_EQ(d.coefOf("I"), 0);
  EXPECT_EQ(d.coefOf("MCN"), 1);
}

TEST(Linear, NonlinearProduct) {
  auto e = parseExprFrom("I*J");
  LinearExpr f = linearize(*e);
  EXPECT_FALSE(f.affine);
}

TEST(Linear, ConstantFoldsThroughMul) {
  auto e = parseExprFrom("3*(I + 2)");
  LinearExpr f = linearize(*e);
  EXPECT_TRUE(f.affine);
  EXPECT_EQ(f.coefOf("I"), 3);
  EXPECT_EQ(f.constant, 6);
}

TEST(Linear, IndexArrayDetected) {
  auto e = parseExprFrom("IT(N) + 1");
  LinearExpr f = linearize(*e);
  EXPECT_FALSE(f.affine);
  EXPECT_TRUE(f.hasIndexArray);
}

TEST(Linear, SubstitutionApplied) {
  auto e = parseExprFrom("JM + 1");
  std::map<std::string, LinearExpr> sub;
  LinearExpr jm;
  jm.coef["JMAX"] = 1;
  jm.constant = -1;
  sub["JM"] = jm;
  LinearExpr f = linearize(*e, sub);
  EXPECT_EQ(f.coefOf("JMAX"), 1);
  EXPECT_EQ(f.constant, 0);
  EXPECT_EQ(f.coefOf("JM"), 0);
}

TEST(Linear, NegationAndNestedParens) {
  auto e = parseExprFrom("-(I - J)*2");
  LinearExpr f = linearize(*e);
  EXPECT_TRUE(f.affine);
  EXPECT_EQ(f.coefOf("I"), -2);
  EXPECT_EQ(f.coefOf("J"), 2);
}

// ---------------------------------------------------------------------------
// Symbolic analysis
// ---------------------------------------------------------------------------

SymbolicAnalysis buildSym(const Analyzed& a,
                          const std::vector<Relation>& inherited = {}) {
  ConstantAnalysis ca = ConstantAnalysis::build(a.graph, *a.model, {});
  return SymbolicAnalysis::build(*a.model, a.graph, a.reaching, ca, a.cdeps,
                                 inherited);
}

TEST(Symbolic, DefinedInLoop) {
  auto a = analyze(
      "      SUBROUTINE S(A, N, C)\n"
      "      REAL A(N)\n"
      "      DO I = 1, N\n"
      "        T = A(I)\n"
      "        A(I) = T*C\n"
      "      ENDDO\n"
      "      END\n");
  auto sym = buildSym(a);
  auto* loop = a.model->topLevelLoops()[0];
  EXPECT_TRUE(sym.definedIn(*loop).count("T"));
  EXPECT_TRUE(sym.definedIn(*loop).count("I"));
  EXPECT_FALSE(sym.definedIn(*loop).count("C"));
}

TEST(Symbolic, LoopInvariance) {
  auto a = analyze(
      "      SUBROUTINE S(A, B, N, C)\n"
      "      REAL A(N), B(N)\n"
      "      DO I = 1, N\n"
      "        A(I) = B(2)*C + FLOAT(I)\n"
      "      ENDDO\n"
      "      END\n");
  auto sym = buildSym(a);
  auto* loop = a.model->topLevelLoops()[0];
  const Stmt* assign = loop->bodyStmts[0];
  const fortran::Expr& rhs = *assign->rhs;
  // B(2)*C is invariant (B not written in loop); FLOAT(I) is not.
  EXPECT_TRUE(sym.isLoopInvariant(*rhs.lhs, *loop));
  EXPECT_FALSE(sym.isLoopInvariant(rhs, *loop));
}

TEST(Symbolic, ArrayWrittenInLoopNotInvariant) {
  auto a = analyze(
      "      SUBROUTINE S(A, N, C)\n"
      "      REAL A(N)\n"
      "      DO I = 1, N\n"
      "        A(I) = A(2)*C\n"
      "      ENDDO\n"
      "      END\n");
  auto sym = buildSym(a);
  auto* loop = a.model->topLevelLoops()[0];
  const fortran::Expr& rhs = *loop->bodyStmts[0]->rhs;
  EXPECT_FALSE(sym.isLoopInvariant(*rhs.lhs, *loop));  // A(2): A is written
}

TEST(Symbolic, AuxInductionRecognized) {
  auto a = analyze(
      "      SUBROUTINE S(A, N, K)\n"
      "      REAL A(2*N)\n"
      "      K = 0\n"
      "      DO I = 1, N\n"
      "        K = K + 2\n"
      "        A(K) = 0.0\n"
      "      ENDDO\n"
      "      END\n");
  auto sym = buildSym(a);
  auto* loop = a.model->topLevelLoops()[0];
  auto aux = sym.auxInductionsOf(*loop);
  ASSERT_EQ(aux.size(), 1u);
  EXPECT_EQ(aux[0].name, "K");
  EXPECT_EQ(aux[0].stride, 2);
}

TEST(Symbolic, ConditionalIncrementNotAuxIV) {
  auto a = analyze(
      "      SUBROUTINE S(A, N, K)\n"
      "      REAL A(2*N)\n"
      "      DO I = 1, N\n"
      "        IF (A(I) .GT. 0.0) THEN\n"
      "          K = K + 1\n"
      "        ENDIF\n"
      "        A(I) = FLOAT(K)\n"
      "      ENDDO\n"
      "      END\n");
  auto sym = buildSym(a);
  auto* loop = a.model->topLevelLoops()[0];
  EXPECT_TRUE(sym.auxInductionsOf(*loop).empty());
}

TEST(Symbolic, RelationFromUniqueReachingDef) {
  auto a = analyze(
      "      SUBROUTINE S(A, JMAX, N)\n"
      "      REAL A(N)\n"
      "      JM = JMAX - 1\n"
      "      DO I = 1, N\n"
      "        A(I) = A(JM)\n"
      "      ENDDO\n"
      "      END\n");
  auto sym = buildSym(a);
  auto* loop = a.model->topLevelLoops()[0];
  auto rels = sym.relationsAt(*loop);
  bool found = false;
  for (const auto& r : rels) {
    if (r.name == "JM") {
      found = true;
      EXPECT_EQ(r.value.coefOf("JMAX"), 1);
      EXPECT_EQ(r.value.constant, -1);
    }
  }
  EXPECT_TRUE(found);
}

TEST(Symbolic, SubstitutionRewritesAuxIV) {
  auto a = analyze(
      "      SUBROUTINE S(A, N, K)\n"
      "      REAL A(2*N)\n"
      "      K = 0\n"
      "      DO I = 1, N\n"
      "        K = K + 2\n"
      "        A(K) = 0.0\n"
      "      ENDDO\n"
      "      END\n");
  auto sym = buildSym(a);
  auto* loop = a.model->topLevelLoops()[0];
  const Stmt* store = loop->bodyStmts[1];
  auto sub = sym.substitutionFor(*loop, *store);
  ASSERT_TRUE(sub.count("K"));
  // K at the store = 2*I + K@pre + ... with coefficient on I equal to the
  // stride.
  EXPECT_EQ(sub["K"].coefOf("I"), 2);
}

// ---------------------------------------------------------------------------
// Privatization (scalar kills)
// ---------------------------------------------------------------------------

PrivatizationAnalysis buildPriv(const Analyzed& a) {
  return PrivatizationAnalysis::build(*a.model, a.graph, a.liveness);
}

TEST(Privatize, KilledTempIsPrivate) {
  auto a = analyze(
      "      SUBROUTINE S(A, N)\n"
      "      REAL A(N)\n"
      "      DO I = 1, N\n"
      "        T = A(I)*2.0\n"
      "        A(I) = T + 1.0\n"
      "      ENDDO\n"
      "      END\n");
  auto pa = buildPriv(a);
  auto* loop = a.model->topLevelLoops()[0];
  EXPECT_EQ(pa.statusOf(*loop, "T"), PrivatizationStatus::Private);
}

TEST(Privatize, UpwardExposedIsShared) {
  auto a = analyze(
      "      SUBROUTINE S(A, N)\n"
      "      REAL A(N)\n"
      "      ACC = 0.0\n"
      "      DO I = 1, N\n"
      "        ACC = ACC + A(I)\n"
      "      ENDDO\n"
      "      A(1) = ACC\n"
      "      END\n");
  auto pa = buildPriv(a);
  auto* loop = a.model->topLevelLoops()[0];
  EXPECT_EQ(pa.statusOf(*loop, "ACC"), PrivatizationStatus::Shared);
}

TEST(Privatize, ConditionallyKilledIsShared) {
  // T is written only on one branch, read unconditionally afterwards: the
  // read is upward exposed along the non-writing path.
  auto a = analyze(
      "      SUBROUTINE S(A, N)\n"
      "      REAL A(N)\n"
      "      DO I = 1, N\n"
      "        IF (A(I) .GT. 0.0) THEN\n"
      "          T = A(I)\n"
      "        ENDIF\n"
      "        A(I) = T\n"
      "      ENDDO\n"
      "      END\n");
  auto pa = buildPriv(a);
  auto* loop = a.model->topLevelLoops()[0];
  EXPECT_EQ(pa.statusOf(*loop, "T"), PrivatizationStatus::Shared);
}

TEST(Privatize, LastValueNeededWhenLiveAfter) {
  auto a = analyze(
      "      SUBROUTINE S(A, N, OUT)\n"
      "      REAL A(N)\n"
      "      DO I = 1, N\n"
      "        T = A(I)\n"
      "        A(I) = T*2.0\n"
      "      ENDDO\n"
      "      OUT = T\n"
      "      END\n");
  auto pa = buildPriv(a);
  auto* loop = a.model->topLevelLoops()[0];
  EXPECT_EQ(pa.statusOf(*loop, "T"),
            PrivatizationStatus::PrivateNeedsLastValue);
}

TEST(Privatize, ReadOnlyIsShared) {
  auto a = analyze(
      "      SUBROUTINE S(A, N, C)\n"
      "      REAL A(N)\n"
      "      DO I = 1, N\n"
      "        A(I) = C\n"
      "      ENDDO\n"
      "      END\n");
  auto pa = buildPriv(a);
  auto* loop = a.model->topLevelLoops()[0];
  EXPECT_EQ(pa.statusOf(*loop, "C"), PrivatizationStatus::Shared);
  auto cls = pa.classesFor(*loop);
  for (const auto& vc : cls) {
    if (vc.name == "C") {
      EXPECT_FALSE(vc.writtenInLoop);
      EXPECT_TRUE(vc.readInLoop);
    }
  }
}

TEST(Privatize, InnerLoopScalar) {
  // T killed in the inner loop every outer iteration: private w.r.t. the
  // outer loop too.
  auto a = analyze(
      "      SUBROUTINE S(A, N, M)\n"
      "      REAL A(N, M)\n"
      "      DO J = 1, M\n"
      "        DO I = 1, N\n"
      "          T = A(I, J)\n"
      "          A(I, J) = T*T\n"
      "        ENDDO\n"
      "      ENDDO\n"
      "      END\n");
  auto pa = buildPriv(a);
  auto* outer = a.model->topLevelLoops()[0];
  EXPECT_EQ(pa.statusOf(*outer, "T"), PrivatizationStatus::Private);
}

TEST(Privatize, InductionVarOfInnerLoopIsNotShared) {
  auto a = analyze(
      "      SUBROUTINE S(A, N, M)\n"
      "      REAL A(N, M)\n"
      "      DO J = 1, M\n"
      "        DO I = 1, N\n"
      "          A(I, J) = 0.0\n"
      "        ENDDO\n"
      "      ENDDO\n"
      "      END\n");
  auto pa = buildPriv(a);
  auto* outer = a.model->topLevelLoops()[0];
  // I is killed by the inner DO header each outer iteration.
  EXPECT_NE(pa.statusOf(*outer, "I"), PrivatizationStatus::Shared);
}

}  // namespace
}  // namespace ps::dataflow
