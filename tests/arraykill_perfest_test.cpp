#include <gtest/gtest.h>

#include "interproc/array_kill.h"
#include "fortran/parser.h"
#include "ped/perfest.h"
#include "ped/session.h"
#include "support/diagnostics.h"

namespace ps {
namespace {

struct Built {
  std::unique_ptr<fortran::Program> prog;
  std::unique_ptr<ir::ProcedureModel> model;
  dep::DependenceGraph graph;
};

Built build(std::string_view src, const dep::AnalysisContext& ctx = {}) {
  DiagnosticEngine diags;
  Built b;
  b.prog = fortran::parseSource(src, diags);
  EXPECT_FALSE(diags.hasErrors()) << diags.dump();
  b.model = std::make_unique<ir::ProcedureModel>(*b.prog->units[0]);
  b.graph = dep::DependenceGraph::build(*b.model, ctx);
  return b;
}

// ---------------------------------------------------------------------------
// Array kill analysis
// ---------------------------------------------------------------------------

TEST(ArrayKill, TemporaryKilledEveryIteration) {
  auto b = build(
      "      SUBROUTINE S(A, N, M)\n"
      "      REAL A(64, 8), W(64)\n"
      "      DO J = 1, M\n"
      "        DO I = 1, N\n"
      "          W(I) = A(I, J)*2.0\n"
      "        ENDDO\n"
      "        DO I = 1, N\n"
      "          A(I, J) = W(I) + 1.0\n"
      "        ENDDO\n"
      "      ENDDO\n"
      "      END\n");
  auto kills = interproc::findArrayKills(*b.model, b.graph);
  ASSERT_EQ(kills.size(), 1u);
  EXPECT_EQ(kills[0].array, "W");
  EXPECT_FALSE(kills[0].interprocedural);
}

TEST(ArrayKill, PartialWriteIsNotAKill) {
  // The write covers [2, N] but a read touches W(1): value crosses
  // iterations.
  auto b = build(
      "      SUBROUTINE S(A, N, M)\n"
      "      REAL A(64, 8), W(64)\n"
      "      DO J = 1, M\n"
      "        DO I = 2, N\n"
      "          W(I) = A(I, J)\n"
      "        ENDDO\n"
      "        DO I = 2, N\n"
      "          A(I, J) = W(I - 1)\n"
      "        ENDDO\n"
      "      ENDDO\n"
      "      END\n");
  auto kills = interproc::findArrayKills(*b.model, b.graph);
  EXPECT_TRUE(kills.empty());
}

TEST(ArrayKill, ReadBeforeWriteIsNotAKill) {
  auto b = build(
      "      SUBROUTINE S(A, N, M)\n"
      "      REAL A(64, 8), W(64)\n"
      "      DO J = 1, M\n"
      "        DO I = 1, N\n"
      "          A(I, J) = W(I)\n"
      "        ENDDO\n"
      "        DO I = 1, N\n"
      "          W(I) = A(I, J)*0.5\n"
      "        ENDDO\n"
      "      ENDDO\n"
      "      END\n");
  auto kills = interproc::findArrayKills(*b.model, b.graph);
  EXPECT_TRUE(kills.empty());
}

TEST(ArrayKill, BoundaryExtensionWithRelation) {
  // The arc3d shape: section [1, JM] extended by the boundary write at
  // JMAX, provable only through JM = JMAX - 1.
  const char* src =
      "      SUBROUTINE FILT(Q, JM, JMAX, KM)\n"
      "      REAL Q(30, 12), WR1(30, 12)\n"
      "      DO 15 N = 1, 5\n"
      "        DO 16 K = 2, KM\n"
      "          DO 16 J = 1, JM\n"
      "            WR1(J, K) = Q(J, K)*FLOAT(N)\n"
      "   16   CONTINUE\n"
      "        DO 76 K = 2, KM\n"
      "          WR1(JMAX, K) = WR1(JM, K)\n"
      "   76   CONTINUE\n"
      "        DO 17 K = 2, KM\n"
      "          DO 17 J = 1, JMAX\n"
      "            Q(J, K) = Q(J, K) + WR1(J, K)\n"
      "   17   CONTINUE\n"
      "   15 CONTINUE\n"
      "      END\n";
  // Without the relation: no kill (the JMAX row is not provably adjacent).
  auto bare = build(src);
  bool bareKill = false;
  for (const auto& k : interproc::findArrayKills(*bare.model, bare.graph)) {
    if (k.array == "WR1") bareKill = true;
  }
  EXPECT_FALSE(bareKill);
  // With JM = JMAX - 1: the kill is proved.
  dep::AnalysisContext ctx;
  dataflow::Relation rel;
  rel.name = "JM";
  rel.value.coef["JMAX"] = 1;
  rel.value.constant = -1;
  ctx.inheritedRelations.push_back(rel);
  auto b = build(src, ctx);
  bool found = false;
  for (const auto& k : interproc::findArrayKills(*b.model, b.graph, &ctx)) {
    if (k.array == "WR1") found = true;
  }
  EXPECT_TRUE(found);
}

TEST(ArrayKill, OnlyReportedForSerializedArrays) {
  // W is killed but the loop has no carried deps on it (each iteration
  // uses a distinct column): nothing to report.
  auto b = build(
      "      SUBROUTINE S(A, N, M)\n"
      "      REAL A(64, 8)\n"
      "      DO J = 1, M\n"
      "        DO I = 1, N\n"
      "          A(I, J) = FLOAT(I + J)\n"
      "        ENDDO\n"
      "      ENDDO\n"
      "      END\n");
  EXPECT_TRUE(interproc::findArrayKills(*b.model, b.graph).empty());
}

// ---------------------------------------------------------------------------
// Performance estimator
// ---------------------------------------------------------------------------

TEST(PerfEst, ConstantTripCountsMultiply) {
  DiagnosticEngine diags;
  auto prog = fortran::parseSource(
      "      SUBROUTINE S(A)\n"
      "      REAL A(100, 100)\n"
      "      DO J = 1, 100\n"
      "        DO I = 1, 100\n"
      "          A(I, J) = 1.0\n"
      "        ENDDO\n"
      "      ENDDO\n"
      "      END\n",
      diags);
  ir::ProcedureModel model(*prog->units[0]);
  ped::PerformanceEstimator est(model);
  ASSERT_EQ(est.loops().size(), 2u);
  // The outer loop's cost is ~100x the inner body and dominates.
  EXPECT_GT(est.loops()[0].cost, est.loops()[1].cost * 50);
  EXPECT_DOUBLE_EQ(est.loops()[0].trips, 100.0);
}

TEST(PerfEst, SymbolicBoundsUseDefaultTrip) {
  DiagnosticEngine diags;
  auto prog = fortran::parseSource(
      "      SUBROUTINE S(A, N)\n"
      "      REAL A(N)\n"
      "      DO I = 1, N\n"
      "        A(I) = 1.0\n"
      "      ENDDO\n"
      "      END\n",
      diags);
  ir::ProcedureModel model(*prog->units[0]);
  ped::EstimatorOptions opts;
  opts.defaultTripCount = 10.0;
  ped::PerformanceEstimator est(model, opts);
  EXPECT_DOUBLE_EQ(est.loops()[0].trips, 10.0);
}

TEST(PerfEst, CalleeCostsCharged) {
  DiagnosticEngine diags;
  auto prog = fortran::parseSource(
      "      SUBROUTINE TOP(A)\n"
      "      REAL A(50)\n"
      "      DO I = 1, 50\n"
      "        CALL LEAF(A)\n"
      "      ENDDO\n"
      "      END\n",
      diags);
  ir::ProcedureModel model(*prog->units[0]);
  std::map<std::string, double> costs;
  costs["LEAF"] = 1000.0;
  ped::PerformanceEstimator est(model, {}, &costs);
  // 50 iterations x ~1000 per call.
  EXPECT_GT(est.procedureCost(), 50000.0);
}

TEST(PerfEst, ParallelSpeedupAmdahl) {
  DiagnosticEngine diags;
  auto prog = fortran::parseSource(
      "      SUBROUTINE S(A)\n"
      "      REAL A(1000)\n"
      "      DO I = 1, 1000\n"
      "        A(I) = FLOAT(I)*2.0\n"
      "      ENDDO\n"
      "      X = A(1)\n"
      "      END\n",
      diags);
  ir::ProcedureModel model(*prog->units[0]);
  ped::EstimatorOptions opts;
  opts.processors = 8.0;
  ped::PerformanceEstimator est(model, opts);
  double speedup = est.parallelSpeedup(est.loops()[0].loop);
  // The loop is nearly all of the procedure: speedup approaches 8.
  EXPECT_GT(speedup, 6.0);
  EXPECT_LE(speedup, 8.0);
}

TEST(PerfEst, ZeroTripLoopCostsNothing) {
  DiagnosticEngine diags;
  auto prog = fortran::parseSource(
      "      SUBROUTINE S(A)\n"
      "      REAL A(10)\n"
      "      DO I = 5, 1\n"
      "        A(I) = 1.0\n"
      "      ENDDO\n"
      "      END\n",
      diags);
  ir::ProcedureModel model(*prog->units[0]);
  ped::PerformanceEstimator est(model);
  EXPECT_DOUBLE_EQ(est.loops()[0].cost, 0.0);
}

// ---------------------------------------------------------------------------
// Assertion corner cases
// ---------------------------------------------------------------------------

TEST(AssertionsEdge, RangeDisprovesDependence) {
  // A(I) vs A(I + K): RANGE(K, 50, 99) puts K beyond the trip count.
  const char* src =
      "      SUBROUTINE S(A, N, K)\n"
      "      REAL A(200)\n"
      "      DO I = 1, 40\n"
      "        A(I) = A(I + K)\n"
      "      ENDDO\n"
      "      END\n";
  DiagnosticEngine diags;
  auto s = ped::Session::load(src, diags);
  EXPECT_FALSE(s->loops()[0].parallelizable);
  ASSERT_TRUE(s->addAssertion("ASSERT RANGE (K, 50, 99)"));
  EXPECT_TRUE(s->loops()[0].parallelizable);
}

TEST(AssertionsEdge, EqualityRelation) {
  // ASSERT RELATION (K .EQ. 0) turns A(I+K) into A(I): same-element only.
  const char* src =
      "      SUBROUTINE S(A, N, K)\n"
      "      REAL A(200)\n"
      "      DO I = 1, 40\n"
      "        A(I) = A(I + K) + 1.0\n"
      "      ENDDO\n"
      "      END\n";
  DiagnosticEngine diags;
  auto s = ped::Session::load(src, diags);
  EXPECT_FALSE(s->loops()[0].parallelizable);
  ASSERT_TRUE(s->addAssertion("ASSERT RELATION (K .EQ. 0)"));
  EXPECT_TRUE(s->loops()[0].parallelizable);
}

TEST(AssertionsEdge, LowercaseAndSpacing) {
  DiagnosticEngine diags;
  auto a = ped::parseAssertion("assert strided ( IT , 3 )", diags);
  ASSERT_TRUE(a.has_value()) << diags.dump();
  EXPECT_EQ(a->array, "IT");
  EXPECT_EQ(a->gap, 3);
}

TEST(AssertionsEdge, SeparatedIsDirectional) {
  // SEPARATED(A, B, k) means B's values exceed A's; the reverse pair must
  // not be affected.
  dep::AnalysisContext ctx;
  std::vector<ped::Assertion> as;
  DiagnosticEngine diags;
  auto a = ped::parseAssertion("ASSERT SEPARATED (IT, JT, 3)", diags);
  ASSERT_TRUE(a.has_value());
  as.push_back(std::move(*a));
  ped::applyAssertions(as, &ctx);
  EXPECT_TRUE((ctx.indexFacts.separated.count({"IT", "JT"})));
  EXPECT_FALSE((ctx.indexFacts.separated.count({"JT", "IT"})));
}

}  // namespace
}  // namespace ps
