// Composition tests: sequences of transformations the 1990s literature
// treats as idioms — tiling (strip-mine + interchange), wavefront
// parallelization (skew + interchange), and the workshop pipelines
// (distribute then parallelize; expand then parallelize) — each checked
// for semantic preservation by the interpreter.
#include <gtest/gtest.h>

#include "fortran/parser.h"
#include "fortran/pretty.h"
#include "interp/machine.h"
#include "support/diagnostics.h"
#include "transform/transform.h"

namespace ps::transform {
namespace {

using fortran::Program;
using fortran::StmtId;
using fortran::StmtKind;

struct Fixture {
  std::unique_ptr<Program> prog;
  std::unique_ptr<Workspace> ws;
  interp::RunResult baseline;
};

Fixture make(std::string_view src) {
  DiagnosticEngine diags;
  Fixture f;
  f.prog = fortran::parseSource(src, diags);
  EXPECT_FALSE(diags.hasErrors()) << diags.dump();
  interp::Machine m(*f.prog);
  f.baseline = m.run();
  EXPECT_TRUE(f.baseline.ok) << f.baseline.error;
  f.ws = std::make_unique<Workspace>(*f.prog, *f.prog->units[0]);
  return f;
}

StmtId nthLoop(const Workspace& ws, std::size_t n) {
  return ws.model->loops().at(n)->stmt->id;
}

void apply(Fixture& f, const std::string& name, Target t) {
  const auto* tr = Registry::instance().byName(name);
  ASSERT_NE(tr, nullptr) << name;
  std::string error;
  ASSERT_TRUE(tr->apply(*f.ws, t, &error))
      << name << ": " << error << "\n"
      << fortran::printProgram(*f.prog);
}

void checkSemantics(Fixture& f, double tol = 1e-9) {
  interp::Machine m(*f.prog);
  auto r = m.run();
  ASSERT_TRUE(r.ok) << r.error << "\n" << fortran::printProgram(*f.prog);
  EXPECT_TRUE(f.baseline.outputEquals(r, tol))
      << fortran::printProgram(*f.prog);
}

TEST(Composition, TilingIsStripMinePlusInterchange) {
  Fixture f = make(
      "      PROGRAM MAIN\n"
      "      REAL A(32, 32)\n"
      "      DO J = 1, 32\n"
      "        DO I = 1, 32\n"
      "          A(I, J) = FLOAT(I)*0.5 + FLOAT(J)\n"
      "        ENDDO\n"
      "      ENDDO\n"
      "      WRITE(6, *) A(32, 32), A(7, 19)\n"
      "      END\n");
  // Strip-mine the inner I loop, then interchange the strip loop outward:
  // classic 1-D tiling.
  Target strip;
  strip.loop = nthLoop(*f.ws, 1);
  strip.factor = 8;
  apply(f, "Strip Mining", strip);
  // The nest is now J / I-strip / I; interchange J with the strip loop.
  Target inter;
  inter.loop = nthLoop(*f.ws, 0);
  apply(f, "Loop Interchange", inter);
  checkSemantics(f);
  // Resulting outermost loop runs over strips.
  auto tops = f.ws->model->topLevelLoops();
  ASSERT_EQ(tops.size(), 1u);
  EXPECT_NE(tops[0]->inductionVar().find("$S"), std::string::npos);
}

TEST(Composition, WavefrontBySkewAndInterchange) {
  // A(I,J) depends on A(I-1,J) and A(I,J-1): neither loop is parallel, but
  // skewing the inner loop then interchanging exposes wavefront
  // parallelism in the (new) inner loop.
  Fixture f = make(
      "      PROGRAM MAIN\n"
      "      REAL A(18, 34)\n"
      "      DO J = 1, 18\n"
      "        A(J, 1) = FLOAT(J)\n"
      "        A(1, J) = FLOAT(J)*2.0\n"
      "      ENDDO\n"
      "      DO 20 J = 2, 16\n"
      "        A(1, J) = FLOAT(J)\n"
      "   20 CONTINUE\n"
      "      DO I = 2, 16\n"
      "        DO J = 2, 16\n"
      "          A(I, J) = A(I - 1, J) + A(I, J - 1)\n"
      "        ENDDO\n"
      "      ENDDO\n"
      "      WRITE(6, *) A(16, 16)\n"
      "      END\n");
  auto tops = f.ws->model->topLevelLoops();
  StmtId nest = tops.back()->stmt->id;
  Target skew;
  skew.loop = nest;
  skew.factor = 1;
  apply(f, "Loop Skewing", skew);
  checkSemantics(f);
  // After skewing, dependences are (<,<=)-shaped; interchange becomes a
  // candidate (legality depends on the refined directions — we at least
  // require the advisor to answer without crashing, and the mechanics to
  // preserve semantics when legal).
  Target inter;
  inter.loop = f.ws->model->topLevelLoops().back()->stmt->id;
  const auto* tr = Registry::instance().byName("Loop Interchange");
  Advice a = tr->advise(*f.ws, inter);
  if (a.safe) {
    std::string error;
    ASSERT_TRUE(tr->apply(*f.ws, inter, &error)) << error;
    checkSemantics(f);
  }
}

TEST(Composition, DistributeThenParallelize) {
  // The neoss/dpmin pipeline: distribution peels the independent work off
  // a recurrence; the independent loop is then converted to PARALLEL DO
  // and validated by the race detector.
  Fixture f = make(
      "      PROGRAM MAIN\n"
      "      REAL P(40), E(40)\n"
      "      DO I = 1, 40\n"
      "        E(I) = FLOAT(I)*0.25\n"
      "      ENDDO\n"
      "      P(1) = E(1)\n"
      "      DO K = 2, 40\n"
      "        P(K) = P(K - 1)*0.9 + E(K)\n"
      "        E(K) = E(K)*0.5\n"
      "      ENDDO\n"
      "      WRITE(6, *) P(40), E(40)\n"
      "      END\n");
  Target dist;
  dist.loop = f.ws->model->topLevelLoops()[1]->stmt->id;
  apply(f, "Loop Distribution", dist);
  checkSemantics(f);

  // Collect ids first: applying a transformation reanalyzes the workspace
  // and invalidates loop pointers.
  std::vector<StmtId> candidates;
  for (auto* l : f.ws->model->topLevelLoops()) {
    if (f.ws->graph->parallelizable(*l) && !l->stmt->isParallel) {
      candidates.push_back(l->stmt->id);
    }
  }
  int parallelized = 0;
  for (StmtId id : candidates) {
    Target t;
    t.loop = id;
    std::string error;
    const auto* tr = Registry::instance().byName("Sequential to Parallel");
    if (tr->apply(*f.ws, t, &error)) ++parallelized;
  }
  EXPECT_GE(parallelized, 2);  // init loop + the E-update piece
  interp::Machine m(*f.prog);
  auto r = m.run();
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_TRUE(f.baseline.outputEquals(r));
  for (const auto& race : r.races) {
    EXPECT_TRUE(race.outputOnly) << race.variable;
  }
}

TEST(Composition, ExpandThenParallelizeWithLastValue) {
  // Scalar expansion unlocks parallelization even when the temporary is
  // live after the loop.
  Fixture f = make(
      "      PROGRAM MAIN\n"
      "      REAL A(30)\n"
      "      DO I = 1, 30\n"
      "        A(I) = FLOAT(I)\n"
      "      ENDDO\n"
      "      DO I = 1, 30\n"
      "        T = A(I)*3.0\n"
      "        A(I) = T - 1.0\n"
      "      ENDDO\n"
      "      WRITE(6, *) A(30), T\n"
      "      END\n");
  f.ws->actx.usePrivatization = false;  // make T's deps visible
  f.ws->reanalyze();
  Target exp;
  exp.loop = nthLoop(*f.ws, 1);
  exp.variable = "T";
  apply(f, "Scalar Expansion", exp);
  Target par;
  par.loop = nthLoop(*f.ws, 1);
  apply(f, "Sequential to Parallel", par);
  checkSemantics(f);
  interp::Machine m(*f.prog);
  auto r = m.run();
  EXPECT_TRUE(r.races.empty());
}

TEST(Composition, PeelThenFuse) {
  // Peeling aligns trip counts so two loops become fusable.
  Fixture f = make(
      "      PROGRAM MAIN\n"
      "      REAL A(41), B(41)\n"
      "      DO I = 1, 41\n"
      "        A(I) = FLOAT(I)\n"
      "      ENDDO\n"
      "      DO I = 2, 41\n"
      "        B(I) = A(I)*2.0\n"
      "      ENDDO\n"
      "      WRITE(6, *) A(41), B(41)\n"
      "      END\n");
  // Peel the first loop's first iteration: both loops then run [2, 41].
  Target peel;
  peel.loop = nthLoop(*f.ws, 0);
  apply(f, "Loop Peeling", peel);
  checkSemantics(f);
  auto tops = f.ws->model->topLevelLoops();
  ASSERT_EQ(tops.size(), 2u);
  Target fuse;
  fuse.loop = tops[0]->stmt->id;
  fuse.secondLoop = tops[1]->stmt->id;
  const auto* tr = Registry::instance().byName("Loop Fusion");
  Advice a = tr->advise(*f.ws, fuse);
  // Headers now match structurally (1+1..41 vs 2..41 may differ textually;
  // fusion requires structural equality, so only assert the pipeline keeps
  // semantics when it fires).
  if (a.safe) {
    std::string error;
    ASSERT_TRUE(tr->apply(*f.ws, fuse, &error)) << error;
  }
  checkSemantics(f);
}

TEST(Composition, ReductionThenDistributionChain) {
  // Recognize the reduction, then the partial-computation loop is
  // parallel while the sum loop stays serial — run both to completion.
  Fixture f = make(
      "      PROGRAM MAIN\n"
      "      REAL V(50)\n"
      "      S = 0.0\n"
      "      DO I = 1, 50\n"
      "        V(I) = FLOAT(I)*0.1\n"
      "      ENDDO\n"
      "      DO I = 1, 50\n"
      "        S = S + V(I)*V(I)\n"
      "      ENDDO\n"
      "      WRITE(6, *) S\n"
      "      END\n");
  Target red;
  red.loop = nthLoop(*f.ws, 1);
  apply(f, "Reduction Recognition", red);
  checkSemantics(f, 1e-6);
  Target par;
  par.loop = nthLoop(*f.ws, 1);
  apply(f, "Sequential to Parallel", par);
  interp::Machine m(*f.prog);
  auto r = m.run();
  ASSERT_TRUE(r.ok);
  EXPECT_TRUE(f.baseline.outputEquals(r, 1e-6));
  EXPECT_TRUE(r.races.empty());
}

}  // namespace
}  // namespace ps::transform
