#include "cfg/control_dep.h"
#include "cfg/dominators.h"
#include "cfg/flow_graph.h"

#include <gtest/gtest.h>

#include "fortran/parser.h"
#include "support/diagnostics.h"

namespace ps::cfg {
namespace {

using fortran::Program;
using fortran::Stmt;
using fortran::StmtKind;

std::unique_ptr<Program> parse(std::string_view src) {
  ps::DiagnosticEngine diags;
  auto prog = fortran::parseSource(src, diags);
  EXPECT_FALSE(diags.hasErrors()) << diags.dump();
  return prog;
}

TEST(FlowGraph, StraightLine) {
  auto prog = parse(
      "      SUBROUTINE S\n"
      "      X = 1\n"
      "      Y = 2\n"
      "      END\n");
  ir::ProcedureModel model(*prog->units[0]);
  FlowGraph g = FlowGraph::build(model);
  // entry -> X -> Y -> exit
  int nx = g.nodeOf(prog->units[0]->body[0]->id);
  int ny = g.nodeOf(prog->units[0]->body[1]->id);
  EXPECT_EQ(g.successors(FlowGraph::kEntry), std::vector<int>{nx});
  EXPECT_EQ(g.successors(nx), std::vector<int>{ny});
  EXPECT_EQ(g.successors(ny), std::vector<int>{FlowGraph::kExit});
}

TEST(FlowGraph, LoopHasBackEdgeAndExit) {
  auto prog = parse(
      "      SUBROUTINE S(A, N)\n"
      "      REAL A(N)\n"
      "      DO I = 1, N\n"
      "        A(I) = 0.0\n"
      "      ENDDO\n"
      "      X = 1\n"
      "      END\n");
  ir::ProcedureModel model(*prog->units[0]);
  FlowGraph g = FlowGraph::build(model);
  const Stmt* doStmt = prog->units[0]->body[0].get();
  const Stmt* bodyStmt = doStmt->body[0].get();
  const Stmt* after = prog->units[0]->body[1].get();
  int nd = g.nodeOf(doStmt->id), nb = g.nodeOf(bodyStmt->id),
      na = g.nodeOf(after->id);
  // DO branches into body and past the loop.
  auto succ = g.successors(nd);
  EXPECT_NE(std::find(succ.begin(), succ.end(), nb), succ.end());
  EXPECT_NE(std::find(succ.begin(), succ.end(), na), succ.end());
  // Body flows back to the DO.
  EXPECT_EQ(g.successors(nb), std::vector<int>{nd});
  EXPECT_TRUE(g.isBranch(nd));
}

TEST(FlowGraph, GotoEdges) {
  auto prog = parse(
      "      SUBROUTINE S(X)\n"
      "      GOTO 100\n"
      "      X = 1.0\n"
      "  100 X = 2.0\n"
      "      END\n");
  ir::ProcedureModel model(*prog->units[0]);
  FlowGraph g = FlowGraph::build(model);
  const auto& body = prog->units[0]->body;
  int ngoto = g.nodeOf(body[0]->id);
  int ntarget = g.nodeOf(body[2]->id);
  EXPECT_EQ(g.successors(ngoto), std::vector<int>{ntarget});
  // X = 1.0 is unreachable: no predecessors.
  EXPECT_TRUE(g.predecessors(g.nodeOf(body[1]->id)).empty());
}

TEST(FlowGraph, ArithmeticIfThreeWay) {
  auto prog = parse(
      "      SUBROUTINE S(K, X)\n"
      "      IF (K - 5) 10, 20, 30\n"
      "   10 X = 1.0\n"
      "   20 X = 2.0\n"
      "   30 X = 3.0\n"
      "      END\n");
  ir::ProcedureModel model(*prog->units[0]);
  FlowGraph g = FlowGraph::build(model);
  int nif = g.nodeOf(prog->units[0]->body[0]->id);
  EXPECT_EQ(g.successors(nif).size(), 3u);
}

TEST(FlowGraph, ReturnGoesToExit) {
  auto prog = parse(
      "      SUBROUTINE S(X)\n"
      "      RETURN\n"
      "      X = 1.0\n"
      "      END\n");
  ir::ProcedureModel model(*prog->units[0]);
  FlowGraph g = FlowGraph::build(model);
  int nret = g.nodeOf(prog->units[0]->body[0]->id);
  EXPECT_EQ(g.successors(nret), std::vector<int>{FlowGraph::kExit});
}

TEST(FlowGraph, IfWithoutElseFallsThrough) {
  auto prog = parse(
      "      SUBROUTINE S(X)\n"
      "      IF (X .GT. 0.0) THEN\n"
      "        X = 1.0\n"
      "      ENDIF\n"
      "      X = 2.0\n"
      "      END\n");
  ir::ProcedureModel model(*prog->units[0]);
  FlowGraph g = FlowGraph::build(model);
  const auto& body = prog->units[0]->body;
  int nif = g.nodeOf(body[0]->id);
  int nthen = g.nodeOf(body[0]->arms[0].body[0]->id);
  int nafter = g.nodeOf(body[1]->id);
  auto succ = g.successors(nif);
  EXPECT_EQ(succ.size(), 2u);
  EXPECT_NE(std::find(succ.begin(), succ.end(), nthen), succ.end());
  EXPECT_NE(std::find(succ.begin(), succ.end(), nafter), succ.end());
}

TEST(Dominators, LoopHeaderDominatesBody) {
  auto prog = parse(
      "      SUBROUTINE S(A, N)\n"
      "      REAL A(N)\n"
      "      DO I = 1, N\n"
      "        A(I) = 0.0\n"
      "        A(I) = A(I) + 1.0\n"
      "      ENDDO\n"
      "      END\n");
  ir::ProcedureModel model(*prog->units[0]);
  FlowGraph g = FlowGraph::build(model);
  DominatorTree dom = DominatorTree::dominators(g);
  const Stmt* doStmt = prog->units[0]->body[0].get();
  int nd = g.nodeOf(doStmt->id);
  for (const auto& b : doStmt->body) {
    EXPECT_TRUE(dom.dominates(nd, g.nodeOf(b->id)));
  }
  EXPECT_TRUE(dom.dominates(FlowGraph::kEntry, nd));
  EXPECT_FALSE(dom.dominates(g.nodeOf(doStmt->body[0]->id), nd));
}

TEST(Dominators, PostDominators) {
  auto prog = parse(
      "      SUBROUTINE S(X)\n"
      "      IF (X .GT. 0.0) THEN\n"
      "        X = 1.0\n"
      "      ELSE\n"
      "        X = 2.0\n"
      "      ENDIF\n"
      "      X = 3.0\n"
      "      END\n");
  ir::ProcedureModel model(*prog->units[0]);
  FlowGraph g = FlowGraph::build(model);
  DominatorTree pdom = DominatorTree::postDominators(g);
  const auto& body = prog->units[0]->body;
  int nif = g.nodeOf(body[0]->id);
  int njoin = g.nodeOf(body[1]->id);
  int nthen = g.nodeOf(body[0]->arms[0].body[0]->id);
  EXPECT_TRUE(pdom.dominates(njoin, nif));
  EXPECT_TRUE(pdom.dominates(njoin, nthen));
  EXPECT_FALSE(pdom.dominates(nthen, nif));
}

TEST(ControlDependence, IfArmsControlled) {
  auto prog = parse(
      "      SUBROUTINE S(X)\n"
      "      IF (X .GT. 0.0) THEN\n"
      "        X = 1.0\n"
      "      ELSE\n"
      "        X = 2.0\n"
      "      ENDIF\n"
      "      X = 3.0\n"
      "      END\n");
  ir::ProcedureModel model(*prog->units[0]);
  FlowGraph g = FlowGraph::build(model);
  auto cd = ControlDependence::build(g);
  const auto& body = prog->units[0]->body;
  auto controlled = cd.controlledBy(body[0]->id);
  // Both arms controlled; the join statement is not.
  EXPECT_EQ(controlled.size(), 2u);
  auto controllers = cd.controllersOf(body[1]->id);
  EXPECT_TRUE(controllers.empty());
}

TEST(ControlDependence, LoopBodyControlledByDo) {
  auto prog = parse(
      "      SUBROUTINE S(A, N)\n"
      "      REAL A(N)\n"
      "      DO I = 1, N\n"
      "        A(I) = 0.0\n"
      "      ENDDO\n"
      "      END\n");
  ir::ProcedureModel model(*prog->units[0]);
  FlowGraph g = FlowGraph::build(model);
  auto cd = ControlDependence::build(g);
  const Stmt* doStmt = prog->units[0]->body[0].get();
  auto controllers = cd.controllersOf(doStmt->body[0]->id);
  ASSERT_EQ(controllers.size(), 1u);
  EXPECT_EQ(controllers[0], doStmt->id);
  EXPECT_FALSE(cd.hasNonLoopController(doStmt->body[0]->id, model));
}

TEST(ControlDependence, GotoControlFlow) {
  // The neoss-style pattern: statements guarded by an arithmetic IF.
  auto prog = parse(
      "      SUBROUTINE S(DENV, RES, N, NR)\n"
      "      REAL DENV(N), RES(N)\n"
      "      DO 50 K = 1, N\n"
      "        IF (DENV(K) - RES(NR + 1)) 100, 10, 10\n"
      "   10   CONTINUE\n"
      "        DENV(K) = DENV(K)*2.0\n"
      "        GOTO 101\n"
      "  100   DENV(K) = 0.0\n"
      "  101   RES(K) = DENV(K)\n"
      "   50 CONTINUE\n"
      "      END\n");
  ir::ProcedureModel model(*prog->units[0]);
  FlowGraph g = FlowGraph::build(model);
  auto cd = ControlDependence::build(g);
  const Stmt* loop = prog->units[0]->body[0].get();
  const Stmt* aif = loop->body[0].get();
  ASSERT_EQ(aif->kind, StmtKind::ArithmeticIf);
  // DENV(K) = DENV(K)*2 (body[2]) and DENV(K)=0 (body[4]) are both
  // control dependent on the arithmetic IF.
  auto controlled = cd.controlledBy(aif->id);
  EXPECT_GE(controlled.size(), 2u);
  EXPECT_TRUE(cd.hasNonLoopController(loop->body[2]->id, model));
  // The join RES(K) = DENV(K) is not controlled by the arithmetic IF.
  bool joinControlled = false;
  for (auto id : controlled) {
    if (id == loop->body[5]->id) joinControlled = true;
  }
  EXPECT_FALSE(joinControlled);
}

TEST(ControlDependence, NestedLoopsChainOfControllers) {
  auto prog = parse(
      "      SUBROUTINE S(A, N, M)\n"
      "      REAL A(N, M)\n"
      "      DO J = 1, M\n"
      "        DO I = 1, N\n"
      "          A(I, J) = 0.0\n"
      "        ENDDO\n"
      "      ENDDO\n"
      "      END\n");
  ir::ProcedureModel model(*prog->units[0]);
  FlowGraph g = FlowGraph::build(model);
  auto cd = ControlDependence::build(g);
  const Stmt* outer = prog->units[0]->body[0].get();
  const Stmt* inner = outer->body[0].get();
  const Stmt* assign = inner->body[0].get();
  auto controllers = cd.controllersOf(assign->id);
  // Assignment is controlled by the inner DO (and transitively by nothing
  // else non-loop).
  ASSERT_FALSE(controllers.empty());
  EXPECT_FALSE(cd.hasNonLoopController(assign->id, model));
}

}  // namespace
}  // namespace ps::cfg
