#include <gtest/gtest.h>

#include "fortran/pretty.h"
#include "ped/render.h"
#include "ped/session.h"
#include "support/diagnostics.h"

namespace ps::ped {
namespace {

std::unique_ptr<Session> load(std::string_view src) {
  ps::DiagnosticEngine diags;
  auto s = Session::load(src, diags);
  EXPECT_NE(s, nullptr);
  EXPECT_FALSE(diags.hasErrors()) << diags.dump();
  return s;
}

const char* kTwoProcs =
    "      PROGRAM MAIN\n"
    "      REAL A(50), B(50)\n"
    "      DO I = 1, 50\n"
    "        B(I) = FLOAT(I)\n"
    "      ENDDO\n"
    "      CALL WORK(A, B, 50)\n"
    "      WRITE(6, *) A(50)\n"
    "      END\n"
    "      SUBROUTINE WORK(A, B, N)\n"
    "      REAL A(N), B(N)\n"
    "      DO 10 I = 2, N\n"
    "        T = B(I)*2.0\n"
    "        A(I) = T + A(I - 1)\n"
    "   10 CONTINUE\n"
    "      END\n";

TEST(Session, NavigationAndLoops) {
  auto s = load(kTwoProcs);
  EXPECT_EQ(s->procedureNames(),
            (std::vector<std::string>{"MAIN", "WORK"}));
  EXPECT_EQ(s->currentProcedure(), "MAIN");
  auto loops = s->loops();
  ASSERT_EQ(loops.size(), 1u);
  EXPECT_TRUE(loops[0].parallelizable);

  ASSERT_TRUE(s->selectProcedure("WORK"));
  loops = s->loops();
  ASSERT_EQ(loops.size(), 1u);
  EXPECT_FALSE(loops[0].parallelizable);  // A(I) = ... A(I-1)
  EXPECT_TRUE(s->selectLoop(loops[0].id));
  EXPECT_FALSE(s->selectLoop(999999));
}

TEST(Session, SourcePaneShowsLoopMarkers) {
  auto s = load(kTwoProcs);
  auto rows = s->sourcePane();
  ASSERT_FALSE(rows.empty());
  int loopStarts = 0;
  for (const auto& r : rows) {
    if (r.loopStart) ++loopStarts;
  }
  EXPECT_EQ(loopStarts, 1);
  EXPECT_EQ(rows[0].ordinal, 1);
}

TEST(Session, DependencePaneProgressiveDisclosure) {
  auto s = load(kTwoProcs);
  s->selectProcedure("WORK");
  auto loops = s->loops();
  s->selectLoop(loops[0].id);
  auto deps = s->dependencePane();
  ASSERT_FALSE(deps.empty());
  bool sawTrueOnA = false;
  for (const auto& d : deps) {
    if (d.type == "True" && d.source.find("A(") == 0) sawTrueOnA = true;
  }
  EXPECT_TRUE(sawTrueOnA);
}

TEST(Session, VariablePaneClassifications) {
  auto s = load(kTwoProcs);
  s->selectProcedure("WORK");
  s->selectLoop(s->loops()[0].id);
  auto vars = s->variablePane();
  bool sawT = false, sawA = false;
  for (const auto& v : vars) {
    if (v.name == "T") {
      sawT = true;
      EXPECT_EQ(v.kind, "private");
      EXPECT_EQ(v.dim, 0);
    }
    if (v.name == "A") {
      sawA = true;
      EXPECT_EQ(v.kind, "shared");
      EXPECT_EQ(v.dim, 1);
    }
  }
  EXPECT_TRUE(sawT);
  EXPECT_TRUE(sawA);
}

TEST(Session, DependenceFiltering) {
  // A loop with both a True dep (on A) and an Anti dep (on B).
  const char* src =
      "      SUBROUTINE S(A, B, N)\n"
      "      REAL A(N), B(N)\n"
      "      DO I = 2, N - 1\n"
      "        A(I) = A(I - 1) + B(I + 1)\n"
      "        B(I) = A(I)*2.0\n"
      "      ENDDO\n"
      "      END\n";
  auto s = load(src);
  s->selectLoop(s->loops()[0].id);
  std::size_t all = s->dependencePane().size();
  Session::DependenceFilter f;
  f.type = dep::DepType::Anti;
  s->setDependenceFilter(f);
  std::size_t antis = s->dependencePane().size();
  EXPECT_LT(antis, all);
  EXPECT_GT(antis, 0u);
  for (const auto& row : s->dependencePane()) {
    EXPECT_EQ(row.type, "Anti");
  }
  s->clearDependenceFilter();
  EXPECT_EQ(s->dependencePane().size(), all);
  EXPECT_GE(s->usage().viewFilterUses, 1);
}

TEST(Session, SourceFilterLoopHeaders) {
  auto s = load(kTwoProcs);
  Session::SourceFilter f;
  f.loopHeadersOnly = true;
  s->setSourceFilter(f);
  auto rows = s->sourcePane();
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_TRUE(rows[0].loopStart);
}

TEST(Session, MarkingPendingDependences) {
  const char* src =
      "      SUBROUTINE S(A, N, K)\n"
      "      REAL A(2*N)\n"
      "      DO I = 1, N\n"
      "        A(I) = A(I + K)\n"
      "      ENDDO\n"
      "      END\n";
  auto s = load(src);
  auto loops = s->loops();
  s->selectLoop(loops[0].id);
  EXPECT_FALSE(loops[0].parallelizable);
  auto deps = s->dependencePane();
  ASSERT_FALSE(deps.empty());
  // Every pending dependence on A gets rejected with a reason (the user
  // knows K > N).
  Session::DependenceFilter f;
  f.variable = "A";
  f.mark = dep::DepMark::Pending;
  int n = s->markAllMatching(f, dep::DepMark::Rejected, "K exceeds N");
  EXPECT_GT(n, 0);
  // The loop is now parallelizable: rejected deps are disregarded.
  loops = s->loops();
  EXPECT_TRUE(loops[0].parallelizable);
  // ... but the dependences are still displayed ("they remain in the
  // system so the user can reconsider them").
  deps = s->dependencePane();
  bool sawRejected = false;
  for (const auto& d : deps) {
    if (d.mark == "rejected") {
      sawRejected = true;
      EXPECT_EQ(d.reason, "K exceeds N");
    }
  }
  EXPECT_TRUE(sawRejected);
  EXPECT_GT(s->usage().dependenceDeletions, 0);
}

TEST(Session, ProvenDependenceCannotBeRejected) {
  const char* src =
      "      SUBROUTINE S(A, N)\n"
      "      REAL A(N)\n"
      "      DO I = 2, N\n"
      "        A(I) = A(I - 1)\n"
      "      ENDDO\n"
      "      END\n";
  auto s = load(src);
  s->selectLoop(s->loops()[0].id);
  auto deps = s->dependencePane();
  std::uint32_t provenId = 0;
  for (const auto& d : deps) {
    if (d.mark == "proven") provenId = d.id;
  }
  ASSERT_NE(provenId, 0u);
  EXPECT_FALSE(
      s->markDependence(provenId, dep::DepMark::Rejected, "nope"));
}

TEST(Session, MarksSurviveReanalysis) {
  const char* src =
      "      SUBROUTINE S(A, N, K)\n"
      "      REAL A(2*N)\n"
      "      DO I = 1, N\n"
      "        T = A(I + K)\n"
      "        A(I) = T\n"
      "      ENDDO\n"
      "      END\n";
  auto s = load(src);
  s->selectLoop(s->loops()[0].id);
  Session::DependenceFilter f;
  f.variable = "A";
  s->markAllMatching(f, dep::DepMark::Rejected, "user knows");
  // A classification edit forces reanalysis; marks must survive.
  s->classifyVariable("T", true, "temp");
  bool stillRejected = false;
  for (const auto& d : s->dependencePane()) {
    if (d.mark == "rejected") stillRejected = true;
  }
  EXPECT_TRUE(stillRejected);
}

TEST(Session, VariableClassificationChangesGraph) {
  // Force-shared T serializes; classifying private restores parallelism.
  const char* src =
      "      SUBROUTINE S(A, N)\n"
      "      REAL A(N)\n"
      "      DO I = 1, N\n"
      "        T = A(I)*2.0\n"
      "        A(I) = T + 1.0\n"
      "      ENDDO\n"
      "      END\n";
  auto s = load(src);
  auto loops = s->loops();
  s->selectLoop(loops[0].id);
  ASSERT_TRUE(s->classifyVariable("T", false, "be conservative"));
  EXPECT_FALSE(s->loops()[0].parallelizable);
  ASSERT_TRUE(s->classifyVariable("T", true, "killed every iteration"));
  EXPECT_TRUE(s->loops()[0].parallelizable);
  EXPECT_EQ(s->usage().variableClassifications, 2);
}

// ---------------------------------------------------------------------------
// Assertions end-to-end (the paper's pueblo3d and dpmin scenarios)
// ---------------------------------------------------------------------------

TEST(Assertions, ParseErrors) {
  ps::DiagnosticEngine diags;
  EXPECT_FALSE(parseAssertion("NONSENSE", diags).has_value());
  EXPECT_FALSE(parseAssertion("ASSERT STRIDED (IT)", diags).has_value());
  EXPECT_FALSE(parseAssertion("ASSERT RANGE (X)", diags).has_value());
  EXPECT_TRUE(diags.hasErrors());
}

TEST(Assertions, RelationParses) {
  ps::DiagnosticEngine diags;
  auto a = parseAssertion("ASSERT RELATION (MCN .GT. IENDV(IR) - ISTRT(IR))",
                          diags);
  ASSERT_TRUE(a.has_value()) << diags.dump();
  EXPECT_EQ(a->kind, AssertionKind::Relation);
  ASSERT_EQ(a->facts.size(), 1u);
  EXPECT_TRUE(a->facts[0].strict);
  EXPECT_EQ(a->facts[0].expr.coefOf("MCN"), 1);
  EXPECT_EQ(a->facts[0].expr.coefOf("@IENDV(IR)"), -1);
  EXPECT_EQ(a->facts[0].expr.coefOf("@ISTRT(IR)"), 1);
}

TEST(Assertions, RangeParses) {
  ps::DiagnosticEngine diags;
  auto a = parseAssertion("ASSERT RANGE (K, 1, 100)", diags);
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->facts.size(), 2u);
}

TEST(Assertions, PuebloDirectiveMakesLoopParallel) {
  // The assertion arrives as a source directive, exactly as a user would
  // write it next to the loop.
  const char* src =
      "      SUBROUTINE PUEBLO(UF, ISTRT, IENDV, MCN, IR, M, N)\n"
      "      REAL UF(10000, 5)\n"
      "      INTEGER ISTRT(N), IENDV(N)\n"
      "CPED$ ASSERT RELATION (MCN .GT. IENDV(IR) - ISTRT(IR))\n"
      "      DO I = ISTRT(IR), IENDV(IR)\n"
      "        UF(I, M) = UF(I + MCN, 3)*2.0\n"
      "      ENDDO\n"
      "      END\n";
  auto s = load(src);
  auto loops = s->loops();
  ASSERT_EQ(loops.size(), 1u);
  EXPECT_TRUE(loops[0].parallelizable);
  EXPECT_EQ(s->assertions().size(), 1u);
}

TEST(Assertions, DpminAddedInteractively) {
  const char* src =
      "      SUBROUTINE DPMIN(F, IT, JT, NBA, DT1)\n"
      "      REAL F(100000)\n"
      "      INTEGER IT(NBA), JT(NBA)\n"
      "      DO 300 N = 1, NBA\n"
      "        I3 = IT(N)\n"
      "        J3 = JT(N)\n"
      "        F(I3 + 1) = F(I3 + 1) - DT1\n"
      "        F(I3 + 2) = F(I3 + 2) - DT1\n"
      "        F(J3 + 1) = F(J3 + 1) - DT1\n"
      "  300 CONTINUE\n"
      "      END\n";
  auto s = load(src);
  EXPECT_FALSE(s->loops()[0].parallelizable);
  ASSERT_TRUE(s->addAssertion("ASSERT STRIDED (IT, 3)"));
  ASSERT_TRUE(s->addAssertion("ASSERT STRIDED (JT, 3)"));
  EXPECT_FALSE(s->loops()[0].parallelizable);  // IT vs JT overlap unknown
  ASSERT_TRUE(s->addAssertion("ASSERT SEPARATED (IT, JT, 3)"));
  EXPECT_TRUE(s->loops()[0].parallelizable);
  EXPECT_EQ(s->usage().assertionsAdded, 3);
}

// ---------------------------------------------------------------------------
// Guidance & analysis access
// ---------------------------------------------------------------------------

TEST(Guidance, SafeOnlyMenuIsSmaller) {
  const char* src =
      "      SUBROUTINE S(A, B, N)\n"
      "      REAL A(N), B(N)\n"
      "      DO I = 1, N\n"
      "        T = B(I)*2.0\n"
      "        A(I) = T + A(I)\n"
      "      ENDDO\n"
      "      END\n";
  auto s = load(src);
  auto loopId = s->loops()[0].id;
  auto full = s->guidance(loopId, /*safeOnly=*/false);
  auto safe = s->guidance(loopId, /*safeOnly=*/true);
  EXPECT_GT(full.size(), safe.size());
  EXPECT_FALSE(full.empty());
}

TEST(Guidance, SuggestsScalarExpansionForSharedTemp) {
  const char* src =
      "      SUBROUTINE S(A, N, T)\n"
      "      REAL A(N)\n"
      "      DO I = 1, N\n"
      "        T = A(I)*2.0\n"
      "        A(I) = T + 1.0\n"
      "      ENDDO\n"
      "      A(1) = T\n"
      "      END\n";
  auto s = load(src);
  auto loopId = s->loops()[0].id;
  auto entries = s->guidance(loopId, false);
  bool expansion = false;
  for (const auto& e : entries) {
    if (e.transformation == "Scalar Expansion" && e.target.variable == "T" &&
        e.advice.safe) {
      expansion = true;
    }
  }
  EXPECT_TRUE(expansion);
}

TEST(Guidance, ExplainLoopNamesImpediments) {
  const char* src =
      "      SUBROUTINE S(A, N, K)\n"
      "      REAL A(2*N)\n"
      "      DO I = 1, N\n"
      "        A(I) = A(I + K)\n"
      "      ENDDO\n"
      "      END\n";
  auto s = load(src);
  std::string e = s->explainLoop(s->loops()[0].id);
  EXPECT_NE(e.find("Anti"), std::string::npos);
  EXPECT_NE(e.find("A"), std::string::npos);
  EXPECT_GT(s->usage().analysisQueries, 0);
}

TEST(Guidance, ExplainLoopReportsArrayKill) {
  // The slab2d pattern: temporary array killed every outer iteration.
  const char* src =
      "      SUBROUTINE S(A, W, N, M)\n"
      "      REAL A(N, M), W(100)\n"
      "      DO J = 1, M\n"
      "        DO I = 1, N\n"
      "          W(I) = A(I, J)*2.0\n"
      "        ENDDO\n"
      "        DO I = 1, N\n"
      "          A(I, J) = W(I) + 1.0\n"
      "        ENDDO\n"
      "      ENDDO\n"
      "      END\n";
  auto s = load(src);
  auto loops = s->loops();
  // Outer loop: serialized by W, but array kill analysis finds W dead
  // across iterations.
  EXPECT_FALSE(loops[0].parallelizable);
  std::string e = s->explainLoop(loops[0].id);
  EXPECT_NE(e.find("array kill"), std::string::npos) << e;
  EXPECT_NE(e.find("W"), std::string::npos);
}

TEST(Guidance, ShowSummaryListsEffects) {
  auto s = load(kTwoProcs);
  std::string sum = s->showSummary("WORK");
  EXPECT_NE(sum.find("A:"), std::string::npos);
  EXPECT_NE(sum.find("MOD"), std::string::npos);
  EXPECT_NE(sum.find("B:"), std::string::npos);
  EXPECT_NE(sum.find("REF"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Performance estimation and profiles
// ---------------------------------------------------------------------------

TEST(Perf, HotLoopsRankNestedLoopsHigher) {
  const char* src =
      "      PROGRAM MAIN\n"
      "      REAL A(40, 40), V(40)\n"
      "      DO I = 1, 40\n"
      "        V(I) = FLOAT(I)\n"
      "      ENDDO\n"
      "      DO J = 1, 40\n"
      "        DO I = 1, 40\n"
      "          A(I, J) = V(I)*V(J)\n"
      "        ENDDO\n"
      "      ENDDO\n"
      "      WRITE(6, *) A(40, 40)\n"
      "      END\n";
  auto s = load(src);
  auto hot = s->hotLoops();
  ASSERT_GE(hot.size(), 3u);
  // The doubly nested J loop must rank first.
  EXPECT_NE(hot[0].headline.find("DO J"), std::string::npos);
  EXPECT_GT(hot[0].cost, hot[2].cost);
}

TEST(Perf, ProfileMatchesEstimatorRanking) {
  const char* src =
      "      PROGRAM MAIN\n"
      "      REAL A(30, 30), V(30)\n"
      "      DO I = 1, 30\n"
      "        V(I) = FLOAT(I)\n"
      "      ENDDO\n"
      "      DO J = 1, 30\n"
      "        DO I = 1, 30\n"
      "          A(I, J) = V(I) + V(J)\n"
      "        ENDDO\n"
      "      ENDDO\n"
      "      WRITE(6, *) A(30, 30)\n"
      "      END\n";
  auto s = load(src);
  auto hot = s->hotLoops();
  auto run = s->profile();
  ASSERT_TRUE(run.ok) << run.error;
  // The estimator's top loop must also dominate the dynamic profile:
  // summing executed-statement counts over each loop's body, the
  // statically hottest loop has the largest dynamic cost.
  auto& ws = s->workspace();
  auto dynCost = [&](fortran::StmtId loopId) {
    ir::Loop* l = ws.loopOf(loopId);
    long long total = 0;
    for (const fortran::Stmt* st : l->bodyStmts) {
      auto it = run.stmtCounts.find(st->id);
      if (it != run.stmtCounts.end()) total += it->second;
    }
    return total;
  };
  long long top = dynCost(hot[0].loop);
  for (const auto& e : hot) {
    EXPECT_LE(dynCost(e.loop), top);
  }
}

// ---------------------------------------------------------------------------
// Interface checking (Composition Editor)
// ---------------------------------------------------------------------------

TEST(Interfaces, DetectsArgCountAndTypeMismatch) {
  const char* src =
      "      PROGRAM MAIN\n"
      "      REAL A(10)\n"
      "      X = 1.5\n"
      "      CALL W1(A, 10, 3)\n"
      "      CALL W2(X)\n"
      "      END\n"
      "      SUBROUTINE W1(A, N)\n"
      "      REAL A(N)\n"
      "      A(1) = 0.0\n"
      "      END\n"
      "      SUBROUTINE W2(K)\n"
      "      INTEGER K\n"
      "      K = 1\n"
      "      END\n";
  auto s = load(src);
  auto problems = s->checkInterfaces();
  ASSERT_EQ(problems.size(), 2u) << problems[0];
  EXPECT_NE(problems[0].find("passes 3 args"), std::string::npos);
  EXPECT_NE(problems[1].find("REAL"), std::string::npos);
}

TEST(Interfaces, DetectsCommonShapeMismatch) {
  const char* src =
      "      PROGRAM MAIN\n"
      "      COMMON /BLK/ A, B\n"
      "      A = 1.0\n"
      "      CALL S\n"
      "      END\n"
      "      SUBROUTINE S\n"
      "      COMMON /BLK/ A, B, C\n"
      "      C = 2.0\n"
      "      END\n";
  auto s = load(src);
  auto problems = s->checkInterfaces();
  ASSERT_EQ(problems.size(), 1u);
  EXPECT_NE(problems[0].find("COMMON /BLK/"), std::string::npos);
}

TEST(Interfaces, CleanProgramHasNoProblems) {
  auto s = load(kTwoProcs);
  EXPECT_TRUE(s->checkInterfaces().empty());
}

// ---------------------------------------------------------------------------
// Transformations through the session
// ---------------------------------------------------------------------------

TEST(SessionTransform, AppliesAndCounts) {
  const char* src =
      "      SUBROUTINE S(A, B, N)\n"
      "      REAL A(N), B(N)\n"
      "      DO I = 1, N\n"
      "        A(I) = 1.0\n"
      "      ENDDO\n"
      "      DO I = 1, N\n"
      "        B(I) = A(I)\n"
      "      ENDDO\n"
      "      END\n";
  auto s = load(src);
  auto loops = s->loops();
  ASSERT_EQ(loops.size(), 2u);
  transform::Target t;
  t.loop = loops[0].id;
  t.secondLoop = loops[1].id;
  std::string error;
  ASSERT_TRUE(s->applyTransformation("Loop Fusion", t, &error)) << error;
  EXPECT_EQ(s->loops().size(), 1u);
  EXPECT_EQ(s->usage().transformationsApplied, 1);
}

// ---------------------------------------------------------------------------
// Renderer (Figure 1)
// ---------------------------------------------------------------------------

TEST(Render, WindowShowsThreePanes) {
  auto s = load(kTwoProcs);
  s->selectProcedure("WORK");
  s->selectLoop(s->loops()[0].id);
  std::string w = renderWindow(*s);
  EXPECT_NE(w.find("ParaScope Editor"), std::string::npos);
  EXPECT_NE(w.find("dependence  variable  transform"), std::string::npos);
  EXPECT_NE(w.find("TYPE"), std::string::npos);   // dependence pane header
  EXPECT_NE(w.find("NAME"), std::string::npos);   // variable pane header
  EXPECT_NE(w.find("DO 10 I"), std::string::npos);
  EXPECT_NE(w.find("True"), std::string::npos);
  EXPECT_NE(w.find("private"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Memoized + incremental analysis plumbing
// ---------------------------------------------------------------------------

// An assertion edit changes the fact base, so every memoized test result may
// be stale. The session invalidates the memo by bumping its generation; if a
// stale entry survived, the rebuild would reuse the assumed-dependence answer
// and the loop would stay non-parallelizable.
TEST(Session, AssertionEditInvalidatesMemoAndChangesGraph) {
  const char* src =
      "      SUBROUTINE SCATTER(A, IT, N)\n"
      "      REAL A(N)\n"
      "      INTEGER IT(N)\n"
      "      DO I = 1, N\n"
      "        A(IT(I)) = A(IT(I)) + 1.0\n"
      "      ENDDO\n"
      "      END\n";
  auto s = load(src);
  EXPECT_FALSE(s->loops()[0].parallelizable);
  // The initial build ran with the shared memo: identical queries from the
  // write-write and write-read pairs of A(IT(I)) hit cache.
  EXPECT_GT(s->analysisStats().memoHits, 0);
  const auto gen0 = s->memo().generation();
  ASSERT_TRUE(s->addAssertion("ASSERT PERMUTATION (IT)"));
  EXPECT_GT(s->memo().generation(), gen0);
  EXPECT_TRUE(s->loops()[0].parallelizable);
}

// An editor change re-tests only the pairs of the edited nest; pairs in
// untouched nests splice their previous edges without issuing tests.
TEST(Session, IncrementalEditSplicesUnchangedPairs) {
  const char* src =
      "      SUBROUTINE TWO(A, B, N)\n"
      "      REAL A(N), B(N)\n"
      "      DO I = 2, N\n"
      "        A(I) = A(I - 1) + 1.0\n"
      "      ENDDO\n"
      "      DO J = 2, N\n"
      "        B(J) = B(J - 1) + 2.0\n"
      "      ENDDO\n"
      "      END\n";
  auto s = load(src);
  auto loops = s->loops();
  ASSERT_EQ(loops.size(), 2u);
  EXPECT_FALSE(loops[0].parallelizable);
  EXPECT_FALSE(loops[1].parallelizable);

  fortran::StmtId target = fortran::kInvalidStmt;
  for (const auto& row : s->sourcePane()) {
    if (row.text.find("B(J - 1)") != std::string::npos) target = row.stmt;
  }
  ASSERT_NE(target, fortran::kInvalidStmt);

  s->resetAnalysisStats();
  ASSERT_TRUE(s->editStatement(target, "B(J) = B(J - 1)*3.0"));
  const auto& st = s->analysisStats();
  // The A-nest pairs were untouched by the edit: spliced, not re-tested.
  EXPECT_GT(st.pairsSpliced, 0);
  EXPECT_GT(st.edgesSpliced, 0);
  // The edited B pair ran its battery.
  EXPECT_GT(st.pairsTested, 0);
  loops = s->loops();
  EXPECT_FALSE(loops[0].parallelizable);
  EXPECT_FALSE(loops[1].parallelizable);

  // The A2 baseline re-tests everything. (The edit minted a fresh id for
  // the B statement, so locate it again.)
  target = fortran::kInvalidStmt;
  for (const auto& row : s->sourcePane()) {
    if (row.text.find("B(J - 1)") != std::string::npos) target = row.stmt;
  }
  ASSERT_NE(target, fortran::kInvalidStmt);
  s->setIncrementalUpdates(false);
  s->resetAnalysisStats();
  ASSERT_TRUE(s->editStatement(target, "B(J) = B(J - 1)*4.0"));
  EXPECT_EQ(s->analysisStats().pairsSpliced, 0);
  EXPECT_GT(s->analysisStats().pairsTested, 0);
}

// ---------------------------------------------------------------------------
// Transactions, invariant auditing, fault injection, degradation reporting
// ---------------------------------------------------------------------------

// Capture the graph of the WORK procedure as a stable string for identity
// comparison across rollback.
std::string graphFingerprint(Session& s) {
  std::string out;
  for (const auto& r : s.dependencePane()) {
    out += r.type + "|" + r.source + "|" + r.sink + "|" + r.vector + "|" +
           std::to_string(r.level) + "\n";
  }
  return out;
}

TEST(SessionTxn, MidApplyFaultRollsBackProgramAndGraph) {
  auto s = load(kTwoProcs);
  // MAIN's loop is dependence-free, so Loop Reversal is safe — only the
  // injected fault makes it fail.
  auto loops = s->loops();
  ASSERT_EQ(loops.size(), 1u);
  ASSERT_TRUE(s->selectLoop(loops[0].id));

  std::string beforeSrc = fortran::printProgram(s->program());
  std::string beforeGraph = graphFingerprint(*s);

  s->injectFaultOnce(Fault::MidApply);
  transform::Target t;
  t.loop = loops[0].id;
  std::string error;
  EXPECT_FALSE(s->applyTransformation("Loop Reversal", t, &error));
  EXPECT_FALSE(error.empty());

  // Rollback is total: source bytes and dependence graph are identical.
  EXPECT_EQ(fortran::printProgram(s->program()), beforeSrc);
  EXPECT_EQ(graphFingerprint(*s), beforeGraph);
  ASSERT_FALSE(s->failures().empty());
  EXPECT_TRUE(s->failures().back().rolledBack);
  EXPECT_EQ(s->failures().back().operation, "Loop Reversal");
  EXPECT_EQ(s->usage().transformationsApplied, 0);
  EXPECT_TRUE(s->auditNow(true).ok());

  // The engine is not poisoned: the same transformation now succeeds.
  EXPECT_TRUE(s->applyTransformation("Loop Reversal", t, &error)) << error;
  EXPECT_EQ(s->usage().transformationsApplied, 1);
  EXPECT_TRUE(s->auditNow(true).ok());
}

TEST(SessionTxn, CorruptStateFaultIsCaughtByAuditAndRolledBack) {
  auto s = load(kTwoProcs);
  auto loops = s->loops();
  ASSERT_EQ(loops.size(), 1u);
  std::string before = fortran::printProgram(s->program());

  // The apply itself succeeds; the injected corruption (duplicate statement
  // id) must be caught by the post-apply audit, which rolls everything back.
  s->injectFaultOnce(Fault::CorruptState);
  transform::Target t;
  t.loop = loops[0].id;
  std::string error;
  EXPECT_FALSE(s->applyTransformation("Loop Reversal", t, &error));
  EXPECT_NE(error.find("audit"), std::string::npos) << error;
  EXPECT_EQ(fortran::printProgram(s->program()), before);
  ASSERT_FALSE(s->failures().empty());
  EXPECT_TRUE(s->failures().back().rolledBack);
  EXPECT_TRUE(s->auditNow(true).ok());
}

TEST(SessionTxn, AuditModeOffSkipsTheCheck) {
  auto s = load(kTwoProcs);
  auto loops = s->loops();
  ASSERT_EQ(loops.size(), 1u);

  s->setAuditMode(AuditMode::Off);
  s->injectFaultOnce(Fault::CorruptState);
  transform::Target t;
  t.loop = loops[0].id;
  std::string error;
  // With auditing off the corruption sails through (that is the point of
  // the mode: benchmarking the no-steering baseline)...
  EXPECT_TRUE(s->applyTransformation("Loop Reversal", t, &error)) << error;
  // ...but an explicit on-demand audit still finds it.
  EXPECT_FALSE(s->auditNow(false).ok());
}

TEST(SessionTxn, UnknownTransformationRecordsFailure) {
  auto s = load(kTwoProcs);
  transform::Target t;
  std::string error;
  EXPECT_FALSE(s->applyTransformation("Warp Drive", t, &error));
  ASSERT_FALSE(s->failures().empty());
  EXPECT_EQ(s->failures().back().operation, "Warp Drive");
  EXPECT_FALSE(s->failures().back().rolledBack);  // nothing was mutated
  s->clearFailures();
  EXPECT_TRUE(s->failures().empty());
}

TEST(SessionTxn, GarbageEditIsRejectedBeforeMutation) {
  auto s = load(kTwoProcs);
  ASSERT_TRUE(s->selectProcedure("WORK"));
  auto rows = s->sourcePane();
  ASSERT_FALSE(rows.empty());
  std::string before = fortran::printProgram(s->program());

  EXPECT_FALSE(s->editStatement(rows[1].stmt, ")))garbage((("));
  EXPECT_EQ(fortran::printProgram(s->program()), before);
  ASSERT_FALSE(s->failures().empty());
  EXPECT_EQ(s->failures().back().operation, "editStatement");
  EXPECT_TRUE(s->auditNow(true).ok());
}

TEST(SessionTxn, StarvedBudgetDegradesAndReports) {
  // Default budget: FM disproves the distance-50 MIV pair, nothing degrades.
  auto s = load(
      "      SUBROUTINE S(A, N)\n"
      "      REAL A(N)\n"
      "      DO I = 1, 10\n"
      "        DO J = 1, 10\n"
      "          A(I + J) = A(I + J + 50)\n"
      "        ENDDO\n"
      "      ENDDO\n"
      "      END\n");
  (void)s->loops();
  EXPECT_TRUE(s->degradationReport().empty());

  dep::AnalysisBudget starved;
  starved.fmMaxConstraints = 1;
  starved.fmMaxEliminations = 0;
  starved.maxSubscriptNodes = 1;
  starved.maxSymbolicRelations = 0;
  s->setAnalysisBudget(starved);
  EXPECT_EQ(s->analysisBudget().fmMaxEliminations, 0);
  (void)s->loops();

  auto report = s->degradationReport();
  EXPECT_FALSE(report.empty());
  ASSERT_FALSE(report.edges.empty());
  bool onA = false;
  for (const auto& e : report.edges) {
    EXPECT_EQ(e.procedure, "S");
    if (e.variable == "A") onA = true;
  }
  EXPECT_TRUE(onA);
  std::string text = report.str();
  EXPECT_NE(text.find("degraded"), std::string::npos) << text;
  EXPECT_TRUE(s->auditNow(true).ok());

  // Restoring the default budget restores the sharp analysis.
  s->setAnalysisBudget({});
  (void)s->loops();
  EXPECT_TRUE(s->degradationReport().edges.empty());
}

TEST(SessionTxn, SnapshotRestoresUnitsAddedByExtraction) {
  // Loop Extraction pushes a new unit; a fault after it must drop the unit
  // again on rollback. Exercised indirectly: fault-injected apply on a
  // program, then procedureNames() must be unchanged.
  auto s = load(kTwoProcs);
  auto namesBefore = s->procedureNames();
  ASSERT_TRUE(s->selectProcedure("WORK"));
  auto loops = s->loops();
  ASSERT_EQ(loops.size(), 1u);

  s->injectFaultOnce(Fault::CorruptState);
  transform::Target t;
  t.loop = loops[0].id;
  std::string error;
  (void)s->applyTransformation("Loop Extraction", t, &error);
  EXPECT_EQ(s->procedureNames(), namesBefore);
  EXPECT_TRUE(s->auditNow(true).ok());
}

}  // namespace
}  // namespace ps::ped
