#include "fortran/pretty.h"

#include <gtest/gtest.h>

#include "fortran/parser.h"
#include "support/diagnostics.h"

namespace ps::fortran {
namespace {

std::unique_ptr<Program> parse(std::string_view src) {
  DiagnosticEngine diags;
  auto prog = parseSource(src, diags);
  EXPECT_FALSE(diags.hasErrors()) << diags.dump();
  return prog;
}

/// Structural equality of two programs, ignoring ids and locations.
bool sameShape(const Program& a, const Program& b) {
  if (a.units.size() != b.units.size()) return false;
  for (std::size_t i = 0; i < a.units.size(); ++i) {
    std::vector<std::string> linesA, linesB;
    a.units[i]->forEachStmt(
        [&](const Stmt& s) { linesA.push_back(stmtHeadline(s)); });
    b.units[i]->forEachStmt(
        [&](const Stmt& s) { linesB.push_back(stmtHeadline(s)); });
    if (linesA != linesB) return false;
  }
  return true;
}

TEST(Pretty, ExprBasic) {
  auto prog = parse("      SUBROUTINE S\n      X = A + B*C\n      END\n");
  EXPECT_EQ(printExpr(*prog->units[0]->body[0]->rhs), "A + B*C");
}

TEST(Pretty, ExprParenthesizesWhenNeeded) {
  auto prog = parse("      SUBROUTINE S\n      X = (A + B)*C\n      END\n");
  EXPECT_EQ(printExpr(*prog->units[0]->body[0]->rhs), "(A + B)*C");
}

TEST(Pretty, ExprSubtractionRhs) {
  auto prog = parse("      SUBROUTINE S\n      X = A - (B - C)\n      END\n");
  EXPECT_EQ(printExpr(*prog->units[0]->body[0]->rhs), "A - (B - C)");
}

TEST(Pretty, NegativeStep) {
  auto prog = parse(
      "      SUBROUTINE S(A, N)\n"
      "      REAL A(N)\n"
      "      DO I = N, 1, -1\n"
      "        A(I) = 0.0\n"
      "      ENDDO\n"
      "      END\n");
  std::string text = printProcedure(*prog->units[0]);
  EXPECT_NE(text.find("DO I = N, 1, -1"), std::string::npos);
}

TEST(Pretty, ArrayRefPrinting) {
  auto prog = parse(
      "      SUBROUTINE S(UF, I, MCN, M)\n"
      "      REAL UF(1000, 5)\n"
      "      UF(I, M) = UF(I + MCN, 3)\n"
      "      END\n");
  const Stmt& s = *prog->units[0]->body[0];
  EXPECT_EQ(printExpr(*s.lhs), "UF(I, M)");
  EXPECT_EQ(printExpr(*s.rhs), "UF(I + MCN, 3)");
}

struct RoundTripCase {
  const char* name;
  const char* source;
};

class RoundTrip : public ::testing::TestWithParam<RoundTripCase> {};

TEST_P(RoundTrip, PrintParseAgain) {
  auto prog1 = parse(GetParam().source);
  std::string printed = printProgram(*prog1);
  DiagnosticEngine diags;
  auto prog2 = parseSource(printed, diags);
  ASSERT_FALSE(diags.hasErrors())
      << "re-parse of pretty output failed:\n" << printed << diags.dump();
  EXPECT_TRUE(sameShape(*prog1, *prog2)) << printed;
  // Printing must be a fixpoint: print(parse(print(p))) == print(p).
  EXPECT_EQ(printProgram(*prog2), printed);
}

INSTANTIATE_TEST_SUITE_P(
    Programs, RoundTrip,
    ::testing::Values(
        RoundTripCase{"simple",
                      "      SUBROUTINE S(A, N)\n"
                      "      REAL A(N)\n"
                      "      DO I = 1, N\n"
                      "        A(I) = 0.0\n"
                      "      ENDDO\n"
                      "      END\n"},
        RoundTripCase{"labeled_do",
                      "      SUBROUTINE S(A, N)\n"
                      "      REAL A(N)\n"
                      "      DO 10 I = 1, N\n"
                      "        A(I) = A(I)*2.0\n"
                      "   10 CONTINUE\n"
                      "      END\n"},
        RoundTripCase{"if_else",
                      "      SUBROUTINE S(X, Y)\n"
                      "      IF (X .GT. Y) THEN\n"
                      "        X = Y\n"
                      "      ELSE IF (X .LT. 0.0) THEN\n"
                      "        X = 0.0\n"
                      "      ELSE\n"
                      "        Y = X\n"
                      "      ENDIF\n"
                      "      END\n"},
        RoundTripCase{"logical_if",
                      "      SUBROUTINE S(X)\n"
                      "      IF (X .GT. 0.0) X = -X\n"
                      "      END\n"},
        RoundTripCase{"goto_aif",
                      "      SUBROUTINE S(K, N)\n"
                      "      DO 50 K = 1, N\n"
                      "        IF (K - 5) 100, 10, 10\n"
                      "   10   CONTINUE\n"
                      "        GOTO 101\n"
                      "  100   CONTINUE\n"
                      "  101   CONTINUE\n"
                      "   50 CONTINUE\n"
                      "      END\n"},
        RoundTripCase{"calls_io",
                      "      PROGRAM MAIN\n"
                      "      REAL A(100)\n"
                      "      READ *, N\n"
                      "      CALL INIT(A, N)\n"
                      "      WRITE(6, *) A(1)\n"
                      "      END\n"
                      "      SUBROUTINE INIT(A, N)\n"
                      "      REAL A(N)\n"
                      "      DO I = 1, N\n"
                      "        A(I) = FLOAT(I)\n"
                      "      ENDDO\n"
                      "      END\n"},
        RoundTripCase{"nested_shared_label",
                      "      SUBROUTINE S(A, N, M)\n"
                      "      REAL A(N, M)\n"
                      "      DO 16 J = 1, M\n"
                      "      DO 16 K = 1, N\n"
                      "      A(K, J) = 0.0\n"
                      "   16 CONTINUE\n"
                      "      END\n"},
        RoundTripCase{"expressions",
                      "      SUBROUTINE S\n"
                      "      X = A + B*C**2 - D/E\n"
                      "      L = A .LT. B .AND. .NOT. (C .GT. D)\n"
                      "      Y = -X + 1.5E2\n"
                      "      END\n"},
        RoundTripCase{"parallel_do",
                      "      SUBROUTINE S(A, N)\n"
                      "      REAL A(N)\n"
                      "      PARALLEL DO I = 1, N\n"
                      "        A(I) = 0.0\n"
                      "      ENDDO\n"
                      "      END\n"},
        RoundTripCase{"assertion",
                      "      SUBROUTINE S(A, IT, N)\n"
                      "      REAL A(N)\n"
                      "      INTEGER IT(N)\n"
                      "CPED$ ASSERT PERMUTATION (IT)\n"
                      "      DO I = 1, N\n"
                      "        A(IT(I)) = 0.0\n"
                      "      ENDDO\n"
                      "      END\n"}),
    [](const ::testing::TestParamInfo<RoundTripCase>& info) {
      return info.param.name;
    });

TEST(Pretty, HeadlineForLoop) {
  auto prog = parse(
      "      SUBROUTINE S(A, N)\n"
      "      REAL A(N)\n"
      "      DO 10 I = 2, N - 1\n"
      "        A(I) = 0.0\n"
      "   10 CONTINUE\n"
      "      END\n");
  EXPECT_EQ(stmtHeadline(*prog->units[0]->body[0]), "DO 10 I = 2, N - 1");
}

TEST(Pretty, DeclarationsPrinted) {
  auto prog = parse(
      "      SUBROUTINE S(A, N)\n"
      "      INTEGER N\n"
      "      REAL A(N, 10)\n"
      "      COMMON /BLK/ Q\n"
      "      END\n");
  std::string text = printProcedure(*prog->units[0]);
  EXPECT_NE(text.find("REAL A(N, 10)"), std::string::npos);
  EXPECT_NE(text.find("COMMON /BLK/ Q"), std::string::npos);
}

}  // namespace
}  // namespace ps::fortran
