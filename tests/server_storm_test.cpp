// Server-storm determinism suite.
//
// The analysis server multiplexes N concurrent editing sessions over one
// shared store image and one shared warm dependence-test memo. The bar,
// for every deck and at 1/2/4/8 analysis threads: each scripted session's
// final dependence graphs are BYTE-IDENTICAL to a solo cold session that
// replayed the same fixed-seed edit stream — concurrency and sharing may
// change where answers come from and how fast, never what they are.
//
// Plus the isolation regression this PR exists to pin: session A's
// invalidation (a new assertion) evicts only A's memo view. Session B
// keeps hitting the entries it could already see.

#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "server/server.h"
#include "support/diagnostics.h"
#include "workloads/harness.h"
#include "workloads/server_driver.h"
#include "workloads/workloads.h"

namespace ps::workloads {
namespace {

class ScopedFile {
 public:
  explicit ScopedFile(std::string path) : path_(std::move(path)) {}
  ~ScopedFile() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

class ServerStorm : public ::testing::TestWithParam<std::string> {};

// Concurrent scripted sessions on one cold server, at every thread count,
// all replaying the same stream as the solo baseline.
TEST_P(ServerStorm, ConcurrentSessionsMatchSoloByteForByte) {
  const std::string deck = GetParam();
  StormScript script{deck, /*seed=*/7, /*bursts=*/3, /*editsPerBurst=*/4};
  const std::vector<server::Edit> edits = stormEdits(script);
  ASSERT_FALSE(edits.empty()) << deck;

  const StormResult solo = runSoloBaseline(script, &edits);
  ASSERT_TRUE(solo.ok) << deck;

  for (int t : {1, 2, 4, 8, 16}) {
    server::AnalysisServer srv({/*storePath=*/"", /*analysisThreads=*/t});
    constexpr int kSessions = 3;
    std::vector<StormResult> results(kSessions);
    std::vector<std::thread> clients;
    clients.reserve(kSessions);
    for (int c = 0; c < kSessions; ++c) {
      clients.emplace_back([&, c] {
        results[c] = runStormSession(
            srv, deck + ".client" + std::to_string(c), script, &edits);
      });
    }
    for (auto& th : clients) th.join();
    for (int c = 0; c < kSessions; ++c) {
      ASSERT_TRUE(results[c].ok) << deck << " client " << c << " @" << t;
      EXPECT_EQ(results[c].snapshot, solo.snapshot)
          << deck << " client " << c << " @" << t << " threads";
    }
    EXPECT_EQ(srv.stats().sessionsOpened, static_cast<std::size_t>(kSessions));
    EXPECT_TRUE(srv.stats().ioFailures.empty());
  }
}

// Warm server: sessions attach over a saved store and share the memo.
// The aggregate dependence tests the N sessions run themselves must come
// in well below N solo cold runs — that is the whole point of the server.
TEST_P(ServerStorm, WarmSessionsShareTheStoreAndMemo) {
  const std::string deck = GetParam();
  const Workload* w = byName(deck);
  ASSERT_NE(w, nullptr);

  auto solo = loadDeck(deck);
  ASSERT_NE(solo, nullptr);
  solo->analyzeParallel(1);
  const long long soloCold = solo->analysisStats().testsRun();
  const std::string want = analysisSnapshot(*solo);
  ScopedFile store(deck + ".server.pspdb");
  ASSERT_TRUE(solo->savePdb(store.path()));

  server::AnalysisServer srv({store.path(), /*analysisThreads=*/4});
  ASSERT_TRUE(srv.warm());
  constexpr int kSessions = 4;
  std::vector<std::string> snaps(kSessions);
  std::vector<long long> live(kSessions, -1);
  std::vector<std::thread> clients;
  clients.reserve(kSessions);
  for (int c = 0; c < kSessions; ++c) {
    clients.emplace_back([&, c] {
      server::ServerSession* ss =
          srv.openSession(deck + ".warm" + std::to_string(c), w->source);
      if (!ss) return;
      snaps[c] = analysisSnapshot(ss->session());
      live[c] = ss->session().analysisStats().testsRun();
    });
  }
  for (auto& th : clients) th.join();

  long long aggregate = 0;
  for (int c = 0; c < kSessions; ++c) {
    ASSERT_GE(live[c], 0) << deck << " warm client " << c << " failed to open";
    EXPECT_EQ(snaps[c], want) << deck << " warm client " << c;
    // An unmodified warm attach is pure reuse: zero live tests.
    EXPECT_EQ(live[c], 0) << deck << " warm client " << c;
    aggregate += live[c];
  }
  // Trivially true given the per-session zeros, but this is the acceptance
  // shape: N sessions' aggregate live work far under N solo cold runs.
  if (soloCold > 0) {
    EXPECT_LT(aggregate, kSessions * soloCold);
  }
}

// The first seeded edit stream (over the pristine deck) whose opening edit
// is a Rewrite — a single edit the coalescing and memo-view tests can
// replay standalone. Deterministic: the seed search order is fixed.
server::Edit firstRewriteEdit(const std::string& deck) {
  for (unsigned seed = 1; seed < 64; ++seed) {
    StormScript s{deck, seed, /*bursts=*/1, /*editsPerBurst=*/1};
    std::vector<server::Edit> edits = stormEdits(s);
    if (!edits.empty() && edits[0].kind == server::Edit::Kind::Rewrite) {
      return edits[0];
    }
  }
  return {};
}

// The regression this PR pins: A's invalidateAll (assertion added) must
// evict only A's view of the shared memo. B keeps hitting every entry it
// could already see.
TEST(ServerMemoViews, NeighborInvalidationLeavesMyHitsIntact) {
  const Workload* w = byName("slab2d");  // assertion-free deck: opens share
  ASSERT_NE(w, nullptr);
  server::AnalysisServer srv({"", /*analysisThreads=*/1});
  server::ServerSession* a = srv.openSession("a", w->source);
  ASSERT_NE(a, nullptr);
  const long long aLive = a->session().analysisStats().testsRun();
  EXPECT_GT(aLive, 0);  // A analyzed the deck cold, for everyone

  server::ServerSession* b = srv.openSession("b", w->source);
  ASSERT_NE(b, nullptr);
  ASSERT_NE(a->memoView(), b->memoView());
  // B's cold open settled entirely out of the memo A just warmed.
  EXPECT_EQ(b->session().analysisStats().testsRun(), 0);

  // Teach B a toggle: rewrite one statement, then revert it. The revert is
  // pure reuse (the original-text entries date from the opens).
  const server::Edit fwd = firstRewriteEdit("slab2d");
  ASSERT_NE(fwd.stmt, fortran::kInvalidStmt);
  ASSERT_TRUE(b->session().selectProcedure(fwd.proc));
  std::string orig;
  for (const auto& row : b->session().sourcePane()) {
    if (row.stmt == fwd.stmt) orig = row.text;
  }
  ASSERT_FALSE(orig.empty());
  auto toggle = [&](const std::string& text) {
    server::Edit e = fwd;
    e.text = text;
    b->submit(e);
    b->settle();
    return b->session().analysisStats().testsRun();
  };
  const long long afterFirstToggle = toggle(fwd.text);
  const long long afterRevert = toggle(orig);
  EXPECT_EQ(afterRevert, afterFirstToggle)
      << "reverting to already-memoized text should run zero live tests";

  // A invalidates: new assertion, full view eviction FOR A. With the old
  // single-generation memo this bumped the global generation and evicted
  // B's entries too.
  ASSERT_TRUE(a->session().addAssertion("ASSERT RANGE (QQA, 1, 10)"));

  // B repeats the identical toggle: both legs were memoized under B's
  // view before A's bump, and B's floor did not move — zero live tests.
  const long long afterSecondToggle = toggle(fwd.text);
  EXPECT_EQ(afterSecondToggle, afterRevert)
      << "neighbor invalidation evicted B's memo view";
  EXPECT_EQ(toggle(orig), afterSecondToggle);

  // A session opened NOW (fresh view, floor zero) still sees the whole
  // warm table — A's eviction was scoped to A.
  server::ServerSession* c = srv.openSession("c", w->source);
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->session().analysisStats().testsRun(), 0);

  // And A, for its part, re-derives against its new fact base but still
  // agrees with a solo session carrying the same assertion — eviction is
  // about freshness, never answers.
  DiagnosticEngine diags;
  auto soloA = ped::Session::load(w->source, diags);
  ASSERT_NE(soloA, nullptr);
  ASSERT_TRUE(soloA->addAssertion("ASSERT RANGE (QQA, 1, 10)"));
  soloA->analyzeParallel(1);
  EXPECT_EQ(analysisSnapshot(a->session()), analysisSnapshot(*soloA));
}

// Sessions over DIFFERENT decks coexist on one server: the memo keys are
// content-complete, so cross-deck entries never collide, and concurrent
// settles on the shared pool keep every deck's answers solo-identical.
TEST(ServerMixedDecks, ConcurrentDifferentDecksStaySoloIdentical) {
  const std::vector<std::string> decks = {"slab2d", "dpmin", "neoss",
                                          "spec77"};
  std::vector<StormScript> scripts;
  std::vector<std::vector<server::Edit>> streams;
  std::vector<std::string> want;
  scripts.reserve(decks.size());
  for (const auto& d : decks) {
    scripts.push_back({d, /*seed=*/11, /*bursts=*/2, /*editsPerBurst=*/3});
    streams.push_back(stormEdits(scripts.back()));
    StormResult solo = runSoloBaseline(scripts.back(), &streams.back());
    ASSERT_TRUE(solo.ok) << d;
    want.push_back(solo.snapshot);
  }

  server::AnalysisServer srv({"", /*analysisThreads=*/4});
  std::vector<StormResult> results(decks.size());
  std::vector<std::thread> clients;
  for (std::size_t i = 0; i < decks.size(); ++i) {
    clients.emplace_back([&, i] {
      results[i] = runStormSession(srv, "mix." + decks[i], scripts[i],
                                   &streams[i]);
    });
  }
  for (auto& th : clients) th.join();
  for (std::size_t i = 0; i < decks.size(); ++i) {
    ASSERT_TRUE(results[i].ok) << decks[i];
    EXPECT_EQ(results[i].snapshot, want[i]) << decks[i];
  }
}

// Edit coalescing IS the batch semantics: a rewrite replaces its statement
// under a fresh id, so of N queued edits naming one snapshot id only one
// can apply — the queue reads last-wins. The settled state must be
// bit-identical to a solo session applying the surviving batch, and the
// source text must match a keystroke-by-keystroke replay that re-reads
// the statement's current id after every rewrite (as a live editor does).
TEST(ServerCoalescing, RedundantRewritesCollapseWithoutChangingAnswers) {
  const server::Edit rewrite = firstRewriteEdit("slab2d");
  ASSERT_NE(rewrite.stmt, fortran::kInvalidStmt);
  const Workload* w = byName("slab2d");

  // The procedure's current text, for the keystroke-replay comparison
  // (statement ids diverge with the number of rewrites minted, text does
  // not).
  auto textOf = [](ped::Session& s, const std::string& proc) {
    EXPECT_TRUE(s.selectProcedure(proc));
    std::string out;
    for (const auto& row : s.sourcePane()) out += row.text + "\n";
    return out;
  };
  // The pane row index of a statement, and the id at a row index — how an
  // interactive client re-finds "the same line" after a rewrite.
  auto rowOf = [](ped::Session& s, const std::string& proc,
                  fortran::StmtId id) -> int {
    EXPECT_TRUE(s.selectProcedure(proc));
    const auto rows = s.sourcePane();
    for (std::size_t i = 0; i < rows.size(); ++i) {
      if (rows[i].stmt == id) return static_cast<int>(i);
    }
    return -1;
  };
  auto idAt = [](ped::Session& s, const std::string& proc, int row) {
    EXPECT_TRUE(s.selectProcedure(proc));
    return s.sourcePane()[static_cast<std::size_t>(row)].stmt;
  };

  // Three keystroke-level rewrites of one statement; only the last
  // survives coalescing.
  std::vector<server::Edit> burst(3, rewrite);
  burst[0].text += " + 1";
  burst[1].text += " + 2";

  server::AnalysisServer srv({"", /*analysisThreads=*/1});
  server::ServerSession* ss = srv.openSession("co", w->source);
  ASSERT_NE(ss, nullptr);
  const int row = rowOf(ss->session(), rewrite.proc, rewrite.stmt);
  ASSERT_GE(row, 0);
  for (const auto& e : burst) ss->submit(e);
  server::ServerSession::SettleReport r = ss->settle();
  EXPECT_EQ(r.editsQueued, 3u);
  EXPECT_EQ(r.editsCoalesced, 2u);
  EXPECT_EQ(r.editsApplied, 1u);
  EXPECT_EQ(r.editsRejected, 0u);

  // Bit-identity: a solo session applying the surviving batch (one
  // rewrite) mints the same ids and lands on the same graphs.
  auto solo = loadDeck("slab2d");
  ASSERT_NE(solo, nullptr);
  ASSERT_TRUE(solo->selectProcedure(rewrite.proc));
  ASSERT_TRUE(solo->editStatement(rewrite.stmt, burst[2].text));
  solo->analyzeParallel(1);
  EXPECT_EQ(analysisSnapshot(ss->session()), analysisSnapshot(*solo));

  // Text identity: a keystroke replay that chases the fresh id after each
  // rewrite ends on the same source.
  auto keys = loadDeck("slab2d");
  ASSERT_NE(keys, nullptr);
  for (const auto& e : burst) {
    ASSERT_TRUE(keys->editStatement(idAt(*keys, rewrite.proc, row), e.text));
  }
  EXPECT_EQ(textOf(*keys, rewrite.proc), textOf(ss->session(), rewrite.proc));

  // Rewrite-then-delete, queued against the CURRENT snapshot: the rewrite
  // is dead work, the delete wins.
  const fortran::StmtId cur = idAt(ss->session(), rewrite.proc, row);
  std::vector<server::Edit> burst2(2, rewrite);
  burst2[0].stmt = cur;
  burst2[1] = {server::Edit::Kind::Delete, rewrite.proc, cur, ""};
  for (const auto& e : burst2) ss->submit(e);
  r = ss->settle();
  EXPECT_EQ(r.editsCoalesced, 1u);
  EXPECT_EQ(r.editsApplied, 1u);
  EXPECT_EQ(r.editsRejected, 0u);
  ASSERT_TRUE(solo->selectProcedure(rewrite.proc));
  ASSERT_TRUE(solo->deleteStatement(idAt(*solo, rewrite.proc, row)));
  solo->analyzeParallel(1);
  EXPECT_EQ(analysisSnapshot(ss->session()), analysisSnapshot(*solo));
}

std::vector<std::string> allDeckNames() {
  std::vector<std::string> names;
  for (const auto& w : all()) names.push_back(w.name);
  return names;
}

INSTANTIATE_TEST_SUITE_P(AllDecks, ServerStorm,
                         ::testing::ValuesIn(allDeckNames()));

}  // namespace
}  // namespace ps::workloads
