#include "workloads/workloads.h"

#include <gtest/gtest.h>

#include <cmath>

#include "interp/machine.h"
#include "ped/session.h"
#include "support/diagnostics.h"

namespace ps::workloads {
namespace {

class WorkloadSuite : public ::testing::TestWithParam<std::string> {};

TEST_P(WorkloadSuite, ParsesWithoutErrors) {
  const Workload* w = byName(GetParam());
  ASSERT_NE(w, nullptr);
  ps::DiagnosticEngine diags;
  auto session = ped::Session::load(w->source, diags);
  ASSERT_NE(session, nullptr);
  EXPECT_FALSE(diags.hasErrors()) << diags.dump();
}

TEST_P(WorkloadSuite, ExecutesAndProducesOutput) {
  const Workload* w = byName(GetParam());
  ps::DiagnosticEngine diags;
  auto session = ped::Session::load(w->source, diags);
  ASSERT_NE(session, nullptr);
  auto run = session->profile();
  ASSERT_TRUE(run.ok) << w->name << ": " << run.error << " at "
                      << run.errorLoc.str();
  EXPECT_FALSE(run.output.empty());
  for (double v : run.output) {
    EXPECT_TRUE(std::isfinite(v)) << w->name;
  }
}

TEST_P(WorkloadSuite, HasMultipleProceduresAndLoops) {
  const Workload* w = byName(GetParam());
  ps::DiagnosticEngine diags;
  auto session = ped::Session::load(w->source, diags);
  ASSERT_NE(session, nullptr);
  EXPECT_GE(session->procedureNames().size(), 4u) << w->name;
  auto hot = session->hotLoops();
  EXPECT_GE(hot.size(), 4u) << w->name;
}

TEST_P(WorkloadSuite, AnalysisFindsSomeParallelLoop) {
  // "For all of the programs, the system is able to automatically detect
  // many parallel loops" — the Table 3 'dependence' row.
  const Workload* w = byName(GetParam());
  ps::DiagnosticEngine diags;
  auto session = ped::Session::load(w->source, diags);
  ASSERT_NE(session, nullptr);
  int parallel = 0;
  for (const auto& name : session->procedureNames()) {
    session->selectProcedure(name);
    for (const auto& l : session->loops()) {
      if (l.parallelizable) ++parallel;
    }
  }
  EXPECT_GT(parallel, 0) << w->name;
}

TEST_P(WorkloadSuite, InterfacesAreClean) {
  const Workload* w = byName(GetParam());
  ps::DiagnosticEngine diags;
  auto session = ped::Session::load(w->source, diags);
  ASSERT_NE(session, nullptr);
  auto problems = session->checkInterfaces();
  EXPECT_TRUE(problems.empty())
      << w->name << ": " << (problems.empty() ? "" : problems[0]);
}

INSTANTIATE_TEST_SUITE_P(
    All, WorkloadSuite,
    ::testing::Values("spec77", "neoss", "nxsns", "dpmin", "slab2d",
                      "slalom", "pueblo3d", "arc3d"),
    [](const ::testing::TestParamInfo<std::string>& info) {
      return info.param;
    });

TEST(Workloads, RegistryComplete) {
  EXPECT_EQ(all().size(), 8u);
  EXPECT_EQ(byName("nonesuch"), nullptr);
}

// Spot checks of the signature obstacles.

TEST(Workloads, Spec77GloopParallelViaSections) {
  ps::DiagnosticEngine diags;
  auto s = ped::Session::load(byName("spec77")->source, diags);
  ASSERT_NE(s, nullptr);
  ASSERT_TRUE(s->selectProcedure("GLOOP"));
  auto loops = s->loops();
  ASSERT_EQ(loops.size(), 1u);
  EXPECT_TRUE(loops[0].parallelizable)
      << s->explainLoop(loops[0].id);
}

TEST(Workloads, PuebloSweepParallelViaAssertion) {
  ps::DiagnosticEngine diags;
  auto s = ped::Session::load(byName("pueblo3d")->source, diags);
  ASSERT_NE(s, nullptr);
  ASSERT_TRUE(s->selectProcedure("SWEEPX"));
  auto loops = s->loops();
  ASSERT_EQ(loops.size(), 1u);
  EXPECT_TRUE(loops[0].parallelizable) << s->explainLoop(loops[0].id);
}

TEST(Workloads, DpminBondedParallelViaAssertions) {
  ps::DiagnosticEngine diags;
  auto s = ped::Session::load(byName("dpmin")->source, diags);
  ASSERT_NE(s, nullptr);
  ASSERT_TRUE(s->selectProcedure("BONDED"));
  auto loops = s->loops();
  ASSERT_EQ(loops.size(), 1u);
  EXPECT_TRUE(loops[0].parallelizable) << s->explainLoop(loops[0].id);
}

TEST(Workloads, NxsnsXsectParallelViaInterproceduralKill) {
  ps::DiagnosticEngine diags;
  auto s = ped::Session::load(byName("nxsns")->source, diags);
  ASSERT_NE(s, nullptr);
  ASSERT_TRUE(s->selectProcedure("XSECT"));
  auto loops = s->loops();
  ASSERT_EQ(loops.size(), 1u);
  EXPECT_TRUE(loops[0].parallelizable) << s->explainLoop(loops[0].id);
}

TEST(Workloads, Slab2dRowSweepNeedsArrayKills) {
  ps::DiagnosticEngine diags;
  auto s = ped::Session::load(byName("slab2d")->source, diags);
  ASSERT_NE(s, nullptr);
  ASSERT_TRUE(s->selectProcedure("STEP"));
  auto loops = s->loops();
  ASSERT_FALSE(loops.empty());
  // The J sweep is serialized by the work arrays...
  EXPECT_FALSE(loops[0].parallelizable);
  // ...and array kill analysis names them as privatizable.
  std::string e = s->explainLoop(loops[0].id);
  EXPECT_NE(e.find("array kill"), std::string::npos) << e;
}

TEST(Workloads, NeossNstateHasUnstructuredFlow) {
  ps::DiagnosticEngine diags;
  auto s = ped::Session::load(byName("neoss")->source, diags);
  ASSERT_NE(s, nullptr);
  ASSERT_TRUE(s->selectProcedure("NSTATE"));
  auto loops = s->loops();
  ASSERT_EQ(loops.size(), 1u);
  // Guidance offers Arithmetic IF Removal for the body.
  auto entries = s->guidance(loops[0].id, false);
  bool offersAifRemoval = false;
  for (const auto& g : entries) {
    if (g.transformation == "Arithmetic IF Removal") offersAifRemoval = true;
  }
  EXPECT_TRUE(offersAifRemoval);
}

}  // namespace
}  // namespace ps::workloads
