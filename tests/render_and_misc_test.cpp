// Remaining surface coverage: the Figure 1 renderer's structure, the
// dependence pane's display conventions, call-graph text output, and a few
// cross-checks the other suites do not touch.
#include <gtest/gtest.h>

#include "interproc/callgraph.h"
#include "fortran/parser.h"
#include "ped/render.h"
#include "ped/session.h"
#include "support/diagnostics.h"
#include "workloads/workloads.h"

namespace ps {
namespace {

std::unique_ptr<ped::Session> load(std::string_view src) {
  DiagnosticEngine diags;
  auto s = ped::Session::load(src, diags);
  EXPECT_NE(s, nullptr);
  return s;
}

TEST(Render, PaneSizesRespected) {
  auto s = load(workloads::byName("slalom")->source);
  s->selectProcedure("FACTOR");
  s->selectLoop(s->loops()[0].id);
  std::string w = ped::renderWindow(*s, 6, 4, 3);
  // 5 horizontal rules + header(2) + 6 source + 1 dep header + 4 dep rows
  // + 1 var header + 3 var rows = fixed line count.
  int lines = 0;
  for (char c : w) {
    if (c == '\n') ++lines;
  }
  EXPECT_EQ(lines, 5 + 2 + 6 + 1 + 4 + 1 + 3);
}

TEST(Render, CurrentLoopMarkedWithChevron) {
  auto s = load(
      "      SUBROUTINE S(A, N)\n"
      "      REAL A(N)\n"
      "      DO I = 1, N\n"
      "        A(I) = 1.0\n"
      "      ENDDO\n"
      "      X = 2.0\n"
      "      END\n");
  s->selectLoop(s->loops()[0].id);
  std::string w = ped::renderWindow(*s);
  EXPECT_NE(w.find("*>"), std::string::npos);  // DO line: loop + current
}

TEST(DependencePaneDisplay, VectorNotationMatchesPaper) {
  auto s = load(
      "      SUBROUTINE S(A, N, M)\n"
      "      REAL A(N, M)\n"
      "      DO J = 2, M\n"
      "        DO I = 1, N\n"
      "          A(I, J) = A(I, J - 1)\n"
      "        ENDDO\n"
      "      ENDDO\n"
      "      END\n");
  s->selectLoop(s->loops()[0].id);
  bool sawVector = false;
  for (const auto& d : s->dependencePane()) {
    if (d.type != "True") continue;
    sawVector = true;
    // Carried by J at distance 1, equal at I: "(1,=)".
    EXPECT_EQ(d.vector, "(1,=)") << d.vector;
  }
  EXPECT_TRUE(sawVector);
}

TEST(CallGraphText, ListsCallersAndCallees) {
  DiagnosticEngine diags;
  auto prog = fortran::parseSource(workloads::byName("spec77")->source,
                                   diags);
  auto cg = interproc::CallGraph::build(*prog);
  std::string text = cg.textual();
  EXPECT_NE(text.find("GLOOP: FL22 FILTLAT"), std::string::npos) << text;
  EXPECT_NE(text.find("SPEC77:"), std::string::npos);
}

TEST(SessionMisc, HotLoopsCoverAllProcedures) {
  auto s = load(workloads::byName("arc3d")->source);
  auto hot = s->hotLoops();
  std::set<std::string> procs;
  for (const auto& e : hot) procs.insert(e.procedure);
  // Every procedure with a loop appears in the global ranking.
  EXPECT_GE(procs.size(), 4u);
  // Fractions sum to ~<= 1 only for disjoint loops; the top entry must
  // have a sane fraction.
  ASSERT_FALSE(hot.empty());
  EXPECT_GT(hot[0].fraction, 0.0);
  EXPECT_LE(hot[0].fraction, 1.0);
}

TEST(SessionMisc, MarkAllRespectsCurrentLoopScope) {
  auto s = load(
      "      SUBROUTINE S(A, B, N, K)\n"
      "      REAL A(2*N), B(2*N)\n"
      "      DO I = 1, N\n"
      "        A(I) = A(I + K)\n"
      "      ENDDO\n"
      "      DO I = 1, N\n"
      "        B(I) = B(I + K)\n"
      "      ENDDO\n"
      "      END\n");
  auto loops = s->loops();
  s->selectLoop(loops[0].id);
  ped::Session::DependenceFilter f;
  f.mark = dep::DepMark::Pending;
  int n = s->markAllMatching(f, dep::DepMark::Rejected, "scoped");
  EXPECT_GT(n, 0);
  // Only the first loop's deps were rejected: loop 2 stays serialized.
  loops = s->loops();
  EXPECT_TRUE(loops[0].parallelizable);
  EXPECT_FALSE(loops[1].parallelizable);
}

TEST(SessionMisc, AcceptedMarkIsRecordedButStillInhibits) {
  auto s = load(
      "      SUBROUTINE S(A, N, K)\n"
      "      REAL A(2*N)\n"
      "      DO I = 1, N\n"
      "        A(I) = A(I + K)\n"
      "      ENDDO\n"
      "      END\n");
  s->selectLoop(s->loops()[0].id);
  auto deps = s->dependencePane();
  ASSERT_FALSE(deps.empty());
  ASSERT_TRUE(s->markDependence(deps[0].id, dep::DepMark::Accepted,
                                "user confirmed aliasing"));
  // Accepted = the user says the dependence is real: still inhibits.
  EXPECT_FALSE(s->loops()[0].parallelizable);
  bool sawAccepted = false;
  for (const auto& d : s->dependencePane()) {
    if (d.mark == "accepted") sawAccepted = true;
  }
  EXPECT_TRUE(sawAccepted);
}

TEST(SessionMisc, VariableFilterByKind) {
  auto s = load(
      "      SUBROUTINE S(A, N)\n"
      "      REAL A(N)\n"
      "      DO I = 1, N\n"
      "        T = A(I)\n"
      "        A(I) = T*2.0\n"
      "      ENDDO\n"
      "      END\n");
  s->selectLoop(s->loops()[0].id);
  ped::Session::VariableFilter f;
  f.kind = "private";
  s->setVariableFilter(f);
  for (const auto& v : s->variablePane()) {
    EXPECT_NE(v.kind.find("private"), std::string::npos) << v.name;
  }
  s->clearVariableFilter();
  f = {};
  f.arraysOnly = true;
  s->setVariableFilter(f);
  for (const auto& v : s->variablePane()) {
    EXPECT_GT(v.dim, 0) << v.name;
  }
}

}  // namespace
}  // namespace ps
