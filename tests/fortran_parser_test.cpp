#include "fortran/parser.h"

#include <gtest/gtest.h>

#include "fortran/pretty.h"
#include "support/diagnostics.h"

namespace ps::fortran {
namespace {

std::unique_ptr<Program> parse(std::string_view src) {
  DiagnosticEngine diags;
  auto prog = parseSource(src, diags);
  EXPECT_FALSE(diags.hasErrors()) << diags.dump();
  return prog;
}

TEST(Parser, EmptySubroutine) {
  auto prog = parse("      SUBROUTINE FOO\n      END\n");
  ASSERT_EQ(prog->units.size(), 1u);
  EXPECT_EQ(prog->units[0]->name, "FOO");
  EXPECT_EQ(prog->units[0]->kind, ProcKind::Subroutine);
  EXPECT_TRUE(prog->units[0]->body.empty());
}

TEST(Parser, SubroutineWithParams) {
  auto prog = parse("      SUBROUTINE AXPY(N, A, X, Y)\n      END\n");
  ASSERT_EQ(prog->units.size(), 1u);
  EXPECT_EQ(prog->units[0]->params,
            (std::vector<std::string>{"N", "A", "X", "Y"}));
}

TEST(Parser, ProgramUnit) {
  auto prog = parse("      PROGRAM MAIN\n      X = 1\n      END\n");
  ASSERT_EQ(prog->units.size(), 1u);
  EXPECT_EQ(prog->units[0]->kind, ProcKind::Program);
  ASSERT_EQ(prog->units[0]->body.size(), 1u);
  EXPECT_EQ(prog->units[0]->body[0]->kind, StmtKind::Assign);
}

TEST(Parser, TypedFunction) {
  auto prog = parse(
      "      REAL FUNCTION NORM(X, N)\n"
      "      REAL X(N)\n"
      "      NORM = X(1)\n"
      "      END\n");
  ASSERT_EQ(prog->units.size(), 1u);
  EXPECT_EQ(prog->units[0]->kind, ProcKind::Function);
  EXPECT_EQ(prog->units[0]->returnType, TypeKind::Real);
}

TEST(Parser, Declarations) {
  auto prog = parse(
      "      SUBROUTINE S\n"
      "      INTEGER N, M\n"
      "      REAL A(10, 20), B(100)\n"
      "      DOUBLE PRECISION D\n"
      "      LOGICAL FLAG\n"
      "      PARAMETER (N = 10)\n"
      "      COMMON /BLK/ A, B\n"
      "      END\n");
  const Procedure& p = *prog->units[0];
  const VarDecl* a = p.findDecl("A");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->type, TypeKind::Real);
  ASSERT_EQ(a->dims.size(), 2u);
  EXPECT_EQ(a->commonBlock, "BLK");
  const VarDecl* n = p.findDecl("N");
  ASSERT_NE(n, nullptr);
  EXPECT_TRUE(n->isParameter);
  ASSERT_NE(n->parameterValue, nullptr);
  EXPECT_TRUE(n->parameterValue->isIntConst(10));
  const VarDecl* d = p.findDecl("D");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->type, TypeKind::DoublePrecision);
  const VarDecl* flag = p.findDecl("FLAG");
  ASSERT_NE(flag, nullptr);
  EXPECT_EQ(flag->type, TypeKind::Logical);
}

TEST(Parser, RealStar8IsDouble) {
  auto prog = parse("      SUBROUTINE S\n      REAL*8 X\n      END\n");
  EXPECT_EQ(prog->units[0]->findDecl("X")->type, TypeKind::DoublePrecision);
}

TEST(Parser, ImplicitTyping) {
  auto prog = parse(
      "      SUBROUTINE S\n"
      "      X = 1\n"
      "      I = 2\n"
      "      END\n");
  const Procedure& p = *prog->units[0];
  EXPECT_EQ(p.findDecl("X")->type, TypeKind::Real);
  EXPECT_EQ(p.findDecl("I")->type, TypeKind::Integer);
}

TEST(Parser, EnddoLoop) {
  auto prog = parse(
      "      SUBROUTINE S(A, N)\n"
      "      REAL A(N)\n"
      "      DO I = 1, N\n"
      "        A(I) = 0.0\n"
      "      ENDDO\n"
      "      END\n");
  const Procedure& p = *prog->units[0];
  ASSERT_EQ(p.body.size(), 1u);
  const Stmt& s = *p.body[0];
  EXPECT_EQ(s.kind, StmtKind::Do);
  EXPECT_EQ(s.doVar, "I");
  EXPECT_EQ(s.doEndLabel, 0);
  ASSERT_EQ(s.body.size(), 1u);
  EXPECT_EQ(s.body[0]->kind, StmtKind::Assign);
}

TEST(Parser, LabeledDoWithContinue) {
  auto prog = parse(
      "      SUBROUTINE S(A, N)\n"
      "      REAL A(N)\n"
      "      DO 10 I = 1, N\n"
      "        A(I) = 0.0\n"
      "   10 CONTINUE\n"
      "      END\n");
  const Stmt& s = *prog->units[0]->body[0];
  EXPECT_EQ(s.kind, StmtKind::Do);
  EXPECT_EQ(s.doEndLabel, 10);
  ASSERT_EQ(s.body.size(), 2u);
  EXPECT_EQ(s.body[1]->kind, StmtKind::Continue);
  EXPECT_EQ(s.body[1]->label, 10);
}

TEST(Parser, SharedDoTermination) {
  // Two nested DOs ending on the same labeled CONTINUE (as in the paper's
  // arc3d filter3d fragment: DO 16 J / DO 16 K / 16 CONTINUE).
  auto prog = parse(
      "      SUBROUTINE S(A, N, M)\n"
      "      REAL A(N, M)\n"
      "      DO 16 J = 1, M\n"
      "      DO 16 K = 1, N\n"
      "      A(K, J) = 0.0\n"
      "   16 CONTINUE\n"
      "      X = 1\n"
      "      END\n");
  const Procedure& p = *prog->units[0];
  ASSERT_EQ(p.body.size(), 2u);  // the outer DO and the X assignment
  const Stmt& outer = *p.body[0];
  EXPECT_EQ(outer.kind, StmtKind::Do);
  EXPECT_EQ(outer.doVar, "J");
  ASSERT_EQ(outer.body.size(), 1u);
  const Stmt& inner = *outer.body[0];
  EXPECT_EQ(inner.kind, StmtKind::Do);
  EXPECT_EQ(inner.doVar, "K");
  ASSERT_EQ(inner.body.size(), 2u);  // assignment + CONTINUE
  EXPECT_EQ(p.body[1]->kind, StmtKind::Assign);
}

TEST(Parser, DoWithStep) {
  auto prog = parse(
      "      SUBROUTINE S(A, N)\n"
      "      REAL A(N)\n"
      "      DO I = N, 1, -2\n"
      "        A(I) = 1.0\n"
      "      ENDDO\n"
      "      END\n");
  const Stmt& s = *prog->units[0]->body[0];
  ASSERT_NE(s.doStep, nullptr);
  EXPECT_EQ(s.doStep->kind, ExprKind::Unary);
}

TEST(Parser, BlockIfElse) {
  auto prog = parse(
      "      SUBROUTINE S(X)\n"
      "      IF (X .GT. 0.0) THEN\n"
      "        X = 1.0\n"
      "      ELSE IF (X .LT. 0.0) THEN\n"
      "        X = -1.0\n"
      "      ELSE\n"
      "        X = 0.0\n"
      "      ENDIF\n"
      "      END\n");
  const Stmt& s = *prog->units[0]->body[0];
  EXPECT_EQ(s.kind, StmtKind::If);
  ASSERT_EQ(s.arms.size(), 3u);
  EXPECT_NE(s.arms[0].condition, nullptr);
  EXPECT_NE(s.arms[1].condition, nullptr);
  EXPECT_EQ(s.arms[2].condition, nullptr);
  EXPECT_FALSE(s.isLogicalIf);
}

TEST(Parser, LogicalIf) {
  auto prog = parse(
      "      SUBROUTINE S(X)\n"
      "      IF (X .GT. 0.0) X = 0.0\n"
      "      END\n");
  const Stmt& s = *prog->units[0]->body[0];
  EXPECT_EQ(s.kind, StmtKind::If);
  EXPECT_TRUE(s.isLogicalIf);
  ASSERT_EQ(s.arms.size(), 1u);
  ASSERT_EQ(s.arms[0].body.size(), 1u);
  EXPECT_EQ(s.arms[0].body[0]->kind, StmtKind::Assign);
}

TEST(Parser, ArithmeticIf) {
  auto prog = parse(
      "      SUBROUTINE S(K)\n"
      "      IF (K - 5) 100, 10, 10\n"
      "   10 CONTINUE\n"
      "  100 CONTINUE\n"
      "      END\n");
  const Stmt& s = *prog->units[0]->body[0];
  EXPECT_EQ(s.kind, StmtKind::ArithmeticIf);
  EXPECT_EQ(s.aifLabels[0], 100);
  EXPECT_EQ(s.aifLabels[1], 10);
  EXPECT_EQ(s.aifLabels[2], 10);
}

TEST(Parser, GotoForms) {
  auto prog = parse(
      "      SUBROUTINE S\n"
      "      GOTO 10\n"
      "   10 GO TO 20\n"
      "   20 CONTINUE\n"
      "      END\n");
  const Procedure& p = *prog->units[0];
  EXPECT_EQ(p.body[0]->kind, StmtKind::Goto);
  EXPECT_EQ(p.body[0]->gotoTarget, 10);
  EXPECT_EQ(p.body[1]->kind, StmtKind::Goto);
  EXPECT_EQ(p.body[1]->gotoTarget, 20);
}

TEST(Parser, CallStatement) {
  auto prog = parse(
      "      SUBROUTINE S(A, N)\n"
      "      REAL A(N)\n"
      "      CALL SWEEP(A, N, 1)\n"
      "      CALL NOARG\n"
      "      END\n");
  const Procedure& p = *prog->units[0];
  EXPECT_EQ(p.body[0]->kind, StmtKind::Call);
  EXPECT_EQ(p.body[0]->callee, "SWEEP");
  EXPECT_EQ(p.body[0]->args.size(), 3u);
  EXPECT_EQ(p.body[1]->callee, "NOARG");
}

TEST(Parser, ArrayRefVsFuncCall) {
  auto prog = parse(
      "      SUBROUTINE S(A, N)\n"
      "      REAL A(N)\n"
      "      A(1) = SQRT(A(2))\n"
      "      END\n");
  const Stmt& s = *prog->units[0]->body[0];
  EXPECT_EQ(s.lhs->kind, ExprKind::ArrayRef);
  EXPECT_EQ(s.rhs->kind, ExprKind::FuncCall);
  EXPECT_EQ(s.rhs->name, "SQRT");
  EXPECT_EQ(s.rhs->args[0]->kind, ExprKind::ArrayRef);
}

TEST(Parser, MultiDimensionalRef) {
  auto prog = parse(
      "      SUBROUTINE S(Q, N)\n"
      "      REAL Q(N, N, 5, 5)\n"
      "      Q(1, 2, 3, 4) = 0.0\n"
      "      END\n");
  const Stmt& s = *prog->units[0]->body[0];
  EXPECT_EQ(s.lhs->args.size(), 4u);
}

TEST(Parser, ExpressionPrecedence) {
  auto prog = parse(
      "      SUBROUTINE S\n"
      "      X = A + B*C**2 - D/E\n"
      "      END\n");
  const Expr& e = *prog->units[0]->body[0]->rhs;
  // ((A + (B * (C ** 2))) - (D / E))
  ASSERT_EQ(e.kind, ExprKind::Binary);
  EXPECT_EQ(e.binOp, BinOp::Sub);
  EXPECT_EQ(e.lhs->binOp, BinOp::Add);
  EXPECT_EQ(e.lhs->rhs->binOp, BinOp::Mul);
  EXPECT_EQ(e.lhs->rhs->rhs->binOp, BinOp::Pow);
  EXPECT_EQ(e.rhs->binOp, BinOp::Div);
}

TEST(Parser, LogicalPrecedence) {
  auto prog = parse(
      "      SUBROUTINE S\n"
      "      L = A .LT. B .AND. C .GT. D .OR. .NOT. E\n"
      "      END\n");
  const Expr& e = *prog->units[0]->body[0]->rhs;
  EXPECT_EQ(e.binOp, BinOp::Or);
  EXPECT_EQ(e.lhs->binOp, BinOp::And);
  EXPECT_EQ(e.rhs->kind, ExprKind::Unary);
}

TEST(Parser, PowerRightAssociative) {
  auto prog = parse("      SUBROUTINE S\n      X = A**B**C\n      END\n");
  const Expr& e = *prog->units[0]->body[0]->rhs;
  EXPECT_EQ(e.binOp, BinOp::Pow);
  EXPECT_EQ(e.lhs->kind, ExprKind::VarRef);
  EXPECT_EQ(e.rhs->binOp, BinOp::Pow);
}

TEST(Parser, ReadWrite) {
  auto prog = parse(
      "      SUBROUTINE S(A, N)\n"
      "      REAL A(N)\n"
      "      READ(5, *) N, A(1)\n"
      "      WRITE(6, *) A(1)\n"
      "      PRINT *, N\n"
      "      END\n");
  const Procedure& p = *prog->units[0];
  EXPECT_EQ(p.body[0]->kind, StmtKind::Read);
  EXPECT_EQ(p.body[0]->args.size(), 2u);
  EXPECT_EQ(p.body[1]->kind, StmtKind::Write);
  EXPECT_EQ(p.body[2]->kind, StmtKind::Write);
}

TEST(Parser, MultipleUnits) {
  auto prog = parse(
      "      PROGRAM MAIN\n"
      "      CALL S\n"
      "      END\n"
      "      SUBROUTINE S\n"
      "      RETURN\n"
      "      END\n");
  ASSERT_EQ(prog->units.size(), 2u);
  EXPECT_EQ(prog->units[0]->name, "MAIN");
  EXPECT_EQ(prog->units[1]->name, "S");
}

TEST(Parser, StatementIdsAreUniqueAndStable) {
  auto prog = parse(
      "      SUBROUTINE S(A, N)\n"
      "      REAL A(N)\n"
      "      DO I = 1, N\n"
      "        A(I) = 0.0\n"
      "        A(I) = A(I) + 1.0\n"
      "      ENDDO\n"
      "      END\n");
  std::vector<StmtId> ids;
  prog->units[0]->forEachStmt([&](const Stmt& s) { ids.push_back(s.id); });
  ASSERT_EQ(ids.size(), 3u);
  for (std::size_t i = 0; i < ids.size(); ++i) {
    EXPECT_NE(ids[i], kInvalidStmt);
    for (std::size_t j = i + 1; j < ids.size(); ++j) {
      EXPECT_NE(ids[i], ids[j]);
    }
  }
}

TEST(Parser, AssertionDirectivePlacement) {
  auto prog = parse(
      "      SUBROUTINE S(A, N)\n"
      "      REAL A(N)\n"
      "      DO I = 1, N\n"
      "CPED$ ASSERT PERMUTATION (IT)\n"
      "        A(I) = 0.0\n"
      "      ENDDO\n"
      "      END\n");
  const Stmt& loop = *prog->units[0]->body[0];
  ASSERT_EQ(loop.body.size(), 2u);
  EXPECT_EQ(loop.body[0]->kind, StmtKind::Assertion);
  EXPECT_EQ(loop.body[0]->assertionText, "ASSERT PERMUTATION (IT)");
}

TEST(Parser, PaperNeossFragment) {
  // The arithmetic-IF/GOTO control flow from the paper's neoss example.
  auto prog = parse(
      "      SUBROUTINE NEOSS(DENV, RES, N, NR)\n"
      "      REAL DENV(N), RES(N)\n"
      "      DO 50 K = 1, N\n"
      "        DENV(K) = DENV(K) + 1.0\n"
      "        IF (DENV(K) - RES(NR + 1)) 100, 10, 10\n"
      "   10   CONTINUE\n"
      "        DENV(K) = DENV(K)*2.0\n"
      "        GOTO 101\n"
      "  100   DENV(K) = 0.0\n"
      "  101   RES(K) = DENV(K)\n"
      "   50 CONTINUE\n"
      "      END\n");
  const Stmt& loop = *prog->units[0]->body[0];
  EXPECT_EQ(loop.kind, StmtKind::Do);
  EXPECT_EQ(loop.doEndLabel, 50);
  ASSERT_GE(loop.body.size(), 6u);
  EXPECT_EQ(loop.body[1]->kind, StmtKind::ArithmeticIf);
}

TEST(Parser, ErrorRecoveryKeepsLaterStatements) {
  DiagnosticEngine diags;
  auto prog = parseSource(
      "      SUBROUTINE S\n"
      "      X = )bad(\n"
      "      Y = 1\n"
      "      END\n",
      diags);
  EXPECT_TRUE(diags.hasErrors());
  // Y = 1 must still be parsed despite the bad line.
  bool foundY = false;
  prog->units[0]->forEachStmt([&](const Stmt& s) {
    if (s.kind == StmtKind::Assign && s.lhs->name == "Y") foundY = true;
  });
  EXPECT_TRUE(foundY);
}

TEST(Parser, KeywordNamedVariableAssignment) {
  // Keywords are not reserved: IF = 3 is an assignment.
  auto prog = parse("      SUBROUTINE S\n      IF = 3\n      END\n");
  const Stmt& s = *prog->units[0]->body[0];
  EXPECT_EQ(s.kind, StmtKind::Assign);
  EXPECT_EQ(s.lhs->name, "IF");
}

TEST(Parser, ParallelDoMarker) {
  auto prog = parse(
      "      SUBROUTINE S(A, N)\n"
      "      REAL A(N)\n"
      "      PARALLEL DO I = 1, N\n"
      "        A(I) = 0.0\n"
      "      ENDDO\n"
      "      END\n");
  EXPECT_TRUE(prog->units[0]->body[0]->isParallel);
}

TEST(Parser, CloneGivesFreshIdsAfterAssign) {
  auto prog = parse(
      "      SUBROUTINE S(A, N)\n"
      "      REAL A(N)\n"
      "      A(1) = 2.0\n"
      "      END\n");
  auto clone = prog->units[0]->body[0]->clone();
  EXPECT_EQ(clone->id, kInvalidStmt);
  prog->units[0]->body.push_back(std::move(clone));
  prog->assignIds();
  EXPECT_NE(prog->units[0]->body[1]->id, kInvalidStmt);
  EXPECT_NE(prog->units[0]->body[1]->id, prog->units[0]->body[0]->id);
}

// ---------------------------------------------------------------------------
// Error recovery: malformed decks produce diagnostics plus a usable partial
// program that still round-trips through the pretty printer — never a crash.
// ---------------------------------------------------------------------------

// Parse a deck that is expected to be broken; assert only that a program
// comes back and that its pretty-printed form re-parses cleanly.
std::unique_ptr<Program> parseBroken(std::string_view src,
                                     DiagnosticEngine& diags) {
  auto prog = parseSource(src, diags);
  EXPECT_NE(prog, nullptr);
  if (prog) {
    DiagnosticEngine rediags;
    auto again = parseSource(printProgram(*prog), rediags);
    EXPECT_NE(again, nullptr);
    EXPECT_FALSE(rediags.hasErrors())
        << "recovered program does not round-trip:\n"
        << rediags.dump();
  }
  return prog;
}

TEST(ParserRecovery, UnterminatedLabeledDo) {
  // DO 10 ... but label 10 never appears: the loop is kept (demoted to
  // structured form) with the trailing statements as its body.
  DiagnosticEngine diags;
  auto prog = parseBroken(
      "      SUBROUTINE S(A, N)\n"
      "      REAL A(N)\n"
      "      DO 10 I = 1, N\n"
      "      A(I) = 0.0\n"
      "      END\n",
      diags);
  EXPECT_TRUE(diags.hasErrors());
  ASSERT_EQ(prog->units.size(), 1u);
  ASSERT_FALSE(prog->units[0]->body.empty());
  const Stmt& loop = *prog->units[0]->body[0];
  EXPECT_EQ(loop.kind, StmtKind::Do);
  EXPECT_EQ(loop.doEndLabel, 0);  // demoted so the printer can close it
  ASSERT_EQ(loop.body.size(), 1u);
  EXPECT_EQ(loop.body[0]->kind, StmtKind::Assign);
}

TEST(ParserRecovery, BadContinuationCard) {
  // A stray continuation mark glues garbage onto the previous statement;
  // the statements around it must survive.
  DiagnosticEngine diags;
  auto prog = parseBroken(
      "      SUBROUTINE S(A, N)\n"
      "      REAL A(N)\n"
      "      A(1) = 2.0\n"
      "     1 = = (\n"
      "      A(2) = 3.0\n"
      "      END\n",
      diags);
  EXPECT_TRUE(diags.hasErrors());
  ASSERT_EQ(prog->units.size(), 1u);
  int assigns = 0;
  prog->units[0]->forEachStmt([&](const Stmt& s) {
    if (s.kind == StmtKind::Assign) ++assigns;
  });
  EXPECT_GE(assigns, 1);  // at least the untouched statement survives
}

TEST(ParserRecovery, GarbageColumnsYieldPartialProgram) {
  DiagnosticEngine diags;
  auto prog = parseBroken(
      "      SUBROUTINE S(A, N)\n"
      "      REAL A(N)\n"
      "      X = 1.0\n"
      "      )(*$& ,,=+ ..\n"
      "      Y = 2.0\n"
      "      END\n",
      diags);
  EXPECT_TRUE(diags.hasErrors());
  ASSERT_EQ(prog->units.size(), 1u);
  bool foundX = false, foundY = false;
  prog->units[0]->forEachStmt([&](const Stmt& s) {
    if (s.kind != StmtKind::Assign || !s.lhs) return;
    if (s.lhs->name == "X") foundX = true;
    if (s.lhs->name == "Y") foundY = true;
  });
  EXPECT_TRUE(foundX);
  EXPECT_TRUE(foundY);
}

TEST(ParserRecovery, TruncatedDeckMidStatement) {
  // EOF in the middle of an expression: diagnostics, no crash, and the
  // partial unit is still printable.
  DiagnosticEngine diags;
  auto prog = parseBroken(
      "      SUBROUTINE S(A, N)\n"
      "      REAL A(N)\n"
      "      DO I = 1, N\n"
      "        A(I) = A(I - 1) +",
      diags);
  EXPECT_TRUE(diags.hasErrors());
  ASSERT_EQ(prog->units.size(), 1u);
}

TEST(ParserRecovery, MissingEndStatement) {
  DiagnosticEngine diags;
  auto prog = parseBroken(
      "      SUBROUTINE S\n"
      "      X = 1\n",
      diags);
  ASSERT_EQ(prog->units.size(), 1u);
  EXPECT_EQ(prog->units[0]->body.size(), 1u);
}

TEST(ParserRecovery, DiagnosticsCarrySourceLineAndCaret) {
  DiagnosticEngine diags;
  (void)parseSource(
      "      SUBROUTINE S\n"
      "      X = ((1\n"
      "      END\n",
      diags);
  ASSERT_TRUE(diags.hasErrors());
  std::string dump = diags.dump();
  // The offending line and a caret marker are embedded in the rendering.
  EXPECT_NE(dump.find("X = ((1"), std::string::npos) << dump;
  EXPECT_NE(dump.find('^'), std::string::npos) << dump;
}

}  // namespace
}  // namespace ps::fortran
