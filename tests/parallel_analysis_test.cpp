#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "dependence/graph.h"
#include "fortran/pretty.h"
#include "ped/session.h"
#include "support/diagnostics.h"
#include "workloads/batch.h"
#include "workloads/workloads.h"

namespace ps::workloads {
namespace {

std::unique_ptr<ped::Session> loadDeck(const std::string& name) {
  const Workload* w = byName(name);
  if (!w) return nullptr;
  ps::DiagnosticEngine diags;
  auto session = ped::Session::load(w->source, diags);
  if (!session || diags.hasErrors()) return nullptr;
  return session;
}

std::string serializeDep(const dep::Dependence& d) {
  std::ostringstream os;
  os << d.id << ' ' << dep::depTypeName(d.type) << ' ' << d.srcStmt << "->"
     << d.dstStmt << ' ' << d.variable;
  if (d.srcRef) os << " src=" << fortran::printExpr(*d.srcRef);
  if (d.dstRef) os << " dst=" << fortran::printExpr(*d.dstRef);
  os << " level=" << d.level << " carrier=" << d.carrierLoop
     << " common=" << d.commonLoop << " vec=" << d.vector.str() << ' '
     << dep::depMarkName(d.mark) << " origin=" << static_cast<int>(d.origin)
     << " interproc=" << d.interprocedural << " degraded=" << d.degraded
     << " reason=" << d.reason;
  return os.str();
}

/// Everything observable about a session's analysis results: per-procedure
/// dependence graphs (every field of every edge, in edge order), the
/// degradation report, and a deep audit.
std::string snapshot(ped::Session& s) {
  std::ostringstream os;
  for (const std::string& name : s.procedureNames()) {
    EXPECT_TRUE(s.selectProcedure(name));
    os << "== " << name << '\n';
    for (const dep::Dependence& d : s.workspace().graph->all()) {
      os << serializeDep(d) << '\n';
    }
  }
  ped::DegradationReport rep = s.degradationReport();
  os << "degradation fm=" << rep.fmDegraded
     << " answers=" << rep.degradedAnswers
     << " linearize=" << rep.linearizeDegraded
     << " symbolic=" << rep.symbolicTruncated << '\n';
  for (const auto& e : rep.edges) {
    os << "degraded-edge " << e.procedure << ' ' << e.depId << ' ' << e.type
       << ' ' << e.variable << " level=" << e.level << '\n';
  }
  audit::Report audit = s.auditNow(true);
  os << "audit ok=" << audit.ok() << '\n';
  for (const auto& v : audit.violations) os << "violation " << v.str() << '\n';
  return os.str();
}

void expectStatsEqual(const dep::TestStats& a, const dep::TestStats& b,
                      const std::string& what) {
  EXPECT_EQ(a.zivDisproofs, b.zivDisproofs) << what;
  EXPECT_EQ(a.zivExact, b.zivExact) << what;
  EXPECT_EQ(a.strongSiv, b.strongSiv) << what;
  EXPECT_EQ(a.strongSivDisproofs, b.strongSivDisproofs) << what;
  EXPECT_EQ(a.indexArrayDisproofs, b.indexArrayDisproofs) << what;
  EXPECT_EQ(a.fmRuns, b.fmRuns) << what;
  EXPECT_EQ(a.fmDisproofs, b.fmDisproofs) << what;
  EXPECT_EQ(a.assumed, b.assumed) << what;
  EXPECT_EQ(a.fmDegraded, b.fmDegraded) << what;
  EXPECT_EQ(a.degradedAnswers, b.degradedAnswers) << what;
  EXPECT_EQ(a.linearizeDegraded, b.linearizeDegraded) << what;
  EXPECT_EQ(a.symbolicTruncated, b.symbolicTruncated) << what;
  EXPECT_EQ(a.testsRequested, b.testsRequested) << what;
  EXPECT_EQ(a.memoHits, b.memoHits) << what;
  EXPECT_EQ(a.memoMisses, b.memoMisses) << what;
  EXPECT_EQ(a.pairsTested, b.pairsTested) << what;
  EXPECT_EQ(a.pairsSpliced, b.pairsSpliced) << what;
  EXPECT_EQ(a.edgesSpliced, b.edgesSpliced) << what;
  EXPECT_EQ(a.edgesRebuilt, b.edgesRebuilt) << what;
}

class ParallelDeterminism : public ::testing::TestWithParam<std::string> {};

// The core tentpole contract: analyzeParallel produces the SAME dependence
// graphs (every edge, every id), the same degradation report and the same
// audit verdict as the sequential fullReanalysis, at every thread count.
TEST_P(ParallelDeterminism, GraphsMatchSequentialAtAllThreadCounts) {
  auto reference = loadDeck(GetParam());
  ASSERT_NE(reference, nullptr);
  reference->fullReanalysis();
  const std::string expected = snapshot(*reference);
  ASSERT_FALSE(expected.empty());

  for (int threads : {1, 2, 4, 8, 16}) {
    auto s = loadDeck(GetParam());
    ASSERT_NE(s, nullptr);
    ped::ParallelReport rep = s->analyzeParallel(threads);
    EXPECT_EQ(rep.threads, threads);
    EXPECT_GT(rep.procedures, 0u);
    EXPECT_EQ(snapshot(*s), expected)
        << GetParam() << " diverged at " << threads << " threads";
  }
}

// Satellite: TestStats merging is race-free and, on the single-threaded
// reference path, the merged totals are bit-identical to the sequential
// run — every counter, not just the totals that happen to be stable.
TEST_P(ParallelDeterminism, MergedStatsEqualSequentialAtOneThread) {
  auto reference = loadDeck(GetParam());
  ASSERT_NE(reference, nullptr);
  reference->resetAnalysisStats();
  reference->fullReanalysis();
  const dep::TestStats seq = reference->analysisStats();

  auto s = loadDeck(GetParam());
  ASSERT_NE(s, nullptr);
  s->resetAnalysisStats();
  (void)s->analyzeParallel(1);
  expectStatsEqual(s->analysisStats(), seq, GetParam() + " @1 thread");
}

// At higher thread counts the memo hit/miss SPLIT may differ (two workers
// can race to first-compute the same key), but the deterministic counters
// — pair enumeration, splice/rebuild tallies, and the total number of
// queries issued — must not move.
TEST_P(ParallelDeterminism, DeterministicCountersStableUnderThreads) {
  auto reference = loadDeck(GetParam());
  ASSERT_NE(reference, nullptr);
  reference->resetAnalysisStats();
  reference->fullReanalysis();
  const dep::TestStats seq = reference->analysisStats();

  for (int threads : {2, 4}) {
    auto s = loadDeck(GetParam());
    ASSERT_NE(s, nullptr);
    s->resetAnalysisStats();
    (void)s->analyzeParallel(threads);
    const dep::TestStats par = s->analysisStats();
    const std::string what = GetParam() + " @" + std::to_string(threads);
    EXPECT_EQ(par.pairsTested, seq.pairsTested) << what;
    EXPECT_EQ(par.pairsSpliced, seq.pairsSpliced) << what;
    EXPECT_EQ(par.edgesSpliced, seq.edgesSpliced) << what;
    EXPECT_EQ(par.edgesRebuilt, seq.edgesRebuilt) << what;
    EXPECT_EQ(par.testsRequested, seq.testsRequested) << what;
    EXPECT_EQ(par.memoHits + par.memoMisses, seq.memoHits + seq.memoMisses)
        << what;
  }
}

std::vector<std::string> deckNames() {
  std::vector<std::string> names;
  for (const Workload& w : all()) names.push_back(w.name);
  return names;
}

INSTANTIATE_TEST_SUITE_P(AllDecks, ParallelDeterminism,
                         ::testing::ValuesIn(deckNames()));

// The batch driver runs every deck on one shared pool; the per-deck results
// must match what each deck reports when analyzed alone, sequentially.
TEST(ParallelBatch, BatchMatchesPerDeckSequential) {
  std::vector<std::unique_ptr<ped::Session>> sessions;
  BatchResult batch = analyzeAllDecks(4, &sessions);
  ASSERT_EQ(batch.decks.size(), all().size());
  ASSERT_EQ(sessions.size(), batch.decks.size());

  for (std::size_t i = 0; i < batch.decks.size(); ++i) {
    const BatchDeck& deck = batch.decks[i];
    ASSERT_TRUE(deck.ok) << deck.name;
    ASSERT_NE(sessions[i], nullptr);

    auto reference = loadDeck(deck.name);
    ASSERT_NE(reference, nullptr);
    reference->fullReanalysis();
    EXPECT_EQ(snapshot(*sessions[i]), snapshot(*reference)) << deck.name;
  }
}

TEST(ParallelBatch, ReportsPoolActivity) {
  BatchResult batch = analyzeAllDecks(2);
  EXPECT_EQ(batch.threads, 2);
  EXPECT_GT(batch.tasksExecuted, batch.decks.size());
  EXPECT_GT(batch.memoHits() + batch.memoMisses(), 0);
  EXPECT_GT(batch.seconds, 0.0);
}

}  // namespace
}  // namespace ps::workloads
