// OpenMP emission suite.
//
// The subsystem's contract: every PARALLEL-marked loop either emits a
// "!$OMP PARALLEL DO" directive whose deck round-trips (re-lexes to the
// exact payloads written, and re-analyzes to a dependence graph
// byte-identical to the directive-stripped source at 1/2/4/8 threads) and
// survives shuffled-schedule relative validation, or is refused with the
// blocking dependence edges named — never silently dropped. The suite
// checks clause derivation on small programs with known answers, the
// refusal and demotion paths, directive wrapping at the fixed-form
// 72-column limit, and the fixed point on all eight workshop decks.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <set>
#include <string>
#include <vector>

#include "emit/emit.h"
#include "fortran/lexer.h"
#include "fortran/pretty.h"
#include "ped/session.h"
#include "support/diagnostics.h"
#include "workloads/emission_driver.h"
#include "workloads/harness.h"
#include "workloads/workloads.h"

namespace ps::workloads {
namespace {

std::unique_ptr<ped::Session> loadSource(const char* src,
                                         const std::string& deck) {
  DiagnosticEngine diags;
  auto s = ped::Session::load(src, diags);
  EXPECT_TRUE(s && !diags.hasErrors()) << "load failed for " << deck;
  if (s) s->setDeckName(deck);
  return s;
}

/// The emission row for one loop id; null when absent.
const emit::LoopEmission* rowFor(const emit::EmissionReport& rep,
                                 fortran::StmtId loop) {
  for (const emit::LoopEmission& le : rep.loops) {
    if (le.loop == loop) return &le;
  }
  return nullptr;
}

/// True when the payload's `clause` list names `var` exactly. The clause
/// is matched at a word boundary (so PRIVATE does not match inside
/// LASTPRIVATE) and the variable list is split on ", ".
bool payloadLists(const std::string& payload, const std::string& clause,
                  const std::string& var) {
  const std::size_t at = payload.find(" " + clause + "(");
  if (at == std::string::npos) return false;
  std::size_t open = payload.find('(', at + 1);
  const std::size_t close = payload.find(')', open);
  std::string list = payload.substr(open + 1, close - open - 1);
  if (list.rfind("+:", 0) == 0) list = list.substr(2);  // REDUCTION(+:...)
  std::size_t pos = 0;
  while (pos <= list.size()) {
    std::size_t comma = list.find(", ", pos);
    const std::string item = list.substr(
        pos, comma == std::string::npos ? std::string::npos : comma - pos);
    if (item == var) return true;
    if (comma == std::string::npos) break;
    pos = comma + 2;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Clause derivation on small programs with known answers
// ---------------------------------------------------------------------------

constexpr char kReduction[] =
    "      PROGRAM RED\n"
    "      DIMENSION A(50)\n"
    "      DO 5 I = 1, 50\n"
    "        A(I) = FLOAT(I)\n"
    "5     CONTINUE\n"
    "      S = 0.0\n"
    "      DO 10 I = 1, 50\n"
    "        S = S + A(I)\n"
    "10    CONTINUE\n"
    "      PRINT *, S\n"
    "      END\n";

TEST(ClauseDerivation, SumReductionEmitsReductionClause) {
  auto s = loadSource(kReduction, "red");
  ASSERT_TRUE(s);
  const MarkCounts mc = markParallelLoops(*s, /*forceAllLoops=*/false);
  EXPECT_GE(mc.safe, 1);       // the initialization loop
  EXPECT_EQ(mc.reduction, 1);  // the sum loop, via the rejection workflow
  const emit::EmissionReport rep = s->emitOpenMP();
  ASSERT_TRUE(rep.ran) << rep.error;
  EXPECT_EQ(rep.loopsConsidered, 2);
  bool sawReduction = false;
  for (const emit::LoopEmission& le : rep.loops) {
    ASSERT_TRUE(le.emitted) << le.refusal;
    if (le.payload.find("REDUCTION(+:S)") != std::string::npos) {
      sawReduction = true;
      // The accumulator must not also appear in SHARED or PRIVATE.
      EXPECT_FALSE(payloadLists(le.payload, "SHARED", "S"));
      EXPECT_FALSE(payloadLists(le.payload, "PRIVATE", "S"));
    }
  }
  EXPECT_TRUE(sawReduction) << rep.str();
  EXPECT_TRUE(rep.roundTripChecked);
  EXPECT_TRUE(rep.roundTripOk) << rep.roundTripDetail;
}

constexpr char kPrivScalar[] =
    "      PROGRAM PRIV\n"
    "      DIMENSION A(40), B(40)\n"
    "      DO 5 I = 1, 40\n"
    "        A(I) = FLOAT(I)\n"
    "5     CONTINUE\n"
    "      DO 10 I = 1, 40\n"
    "        T = A(I)*2.0\n"
    "        B(I) = T + 1.0\n"
    "10    CONTINUE\n"
    "      PRINT *, B(7)\n"
    "      END\n";

TEST(ClauseDerivation, PrivatizableScalarIsPrivate) {
  auto s = loadSource(kPrivScalar, "priv");
  ASSERT_TRUE(s);
  (void)markParallelLoops(*s, false);
  const emit::EmissionReport rep = s->emitOpenMP();
  ASSERT_TRUE(rep.ran) << rep.error;
  bool sawT = false;
  for (const emit::LoopEmission& le : rep.loops) {
    ASSERT_TRUE(le.emitted) << le.refusal;
    if (payloadLists(le.payload, "PRIVATE", "T")) {
      sawT = true;
      EXPECT_TRUE(le.relativeChecked);
      EXPECT_FALSE(le.relativeDiverged) << le.evidence;
      EXPECT_TRUE(le.interpClauses.privatized.count("T"));
    }
  }
  EXPECT_TRUE(sawT) << rep.str();
}

constexpr char kLastValue[] =
    "      PROGRAM LASTV\n"
    "      DIMENSION A(40), B(40)\n"
    "      DO 5 I = 1, 40\n"
    "        A(I) = FLOAT(I)\n"
    "5     CONTINUE\n"
    "      DO 10 I = 1, 40\n"
    "        T = A(I)*2.0\n"
    "        B(I) = T + 1.0\n"
    "10    CONTINUE\n"
    "      PRINT *, T\n"
    "      END\n";

TEST(ClauseDerivation, LiveOutScalarIsLastPrivate) {
  auto s = loadSource(kLastValue, "lastv");
  ASSERT_TRUE(s);
  (void)markParallelLoops(*s, false);
  const emit::EmissionReport rep = s->emitOpenMP();
  ASSERT_TRUE(rep.ran) << rep.error;
  bool sawT = false;
  for (const emit::LoopEmission& le : rep.loops) {
    if (!le.emitted) continue;
    if (payloadLists(le.payload, "LASTPRIVATE", "T")) {
      sawT = true;
      EXPECT_TRUE(le.interpClauses.lastPrivate.count("T"));
      EXPECT_TRUE(le.relativeChecked);
      EXPECT_FALSE(le.relativeDiverged) << le.evidence;
    }
  }
  EXPECT_TRUE(sawT) << rep.str();
}

constexpr char kRecurrence[] =
    "      PROGRAM REC\n"
    "      DIMENSION A(60)\n"
    "      A(1) = 1.0\n"
    "      DO 10 I = 2, 60\n"
    "        A(I) = A(I-1) + 1.0\n"
    "10    CONTINUE\n"
    "      PRINT *, A(60)\n"
    "      END\n";

TEST(ClauseDerivation, CarriedEdgeRefusesNamingBlockingEdges) {
  auto s = loadSource(kRecurrence, "rec");
  ASSERT_TRUE(s);
  // Force-mark: reject the carried edges, mark PARALLEL, restore — the
  // state an unsound session leaves behind after PR 7 auto-restores a
  // deletion.
  const MarkCounts mc = markParallelLoops(*s, /*forceAllLoops=*/true);
  EXPECT_EQ(mc.safe, 0);
  EXPECT_EQ(mc.forced, 1);
  const emit::EmissionReport rep = s->emitOpenMP();
  ASSERT_TRUE(rep.ran) << rep.error;
  ASSERT_EQ(rep.loopsConsidered, 1);
  ASSERT_EQ(rep.loopsRefused, 1);
  const emit::LoopEmission& le = rep.loops.front();
  EXPECT_FALSE(le.emitted);
  EXPECT_FALSE(le.refusal.empty());
  ASSERT_FALSE(le.blocking.empty());
  bool namesA = false;
  for (const emit::BlockingEdge& be : le.blocking) {
    EXPECT_FALSE(be.type.empty());
    EXPECT_NE(le.refusal.find(be.str()), std::string::npos)
        << "refusal must name every blocking edge";
    if (be.variable == "A") namesA = true;
  }
  EXPECT_TRUE(namesA);
  // Refusals leave the deck directive-free for this loop, and the deck
  // still round-trips.
  EXPECT_TRUE(rep.roundTripChecked);
  EXPECT_TRUE(rep.roundTripOk) << rep.roundTripDetail;
}

// A user classification of a privatizable scalar as SHARED flows through
// the whole pipeline: the reanalyzed graph regrows the carried edges the
// privatization had removed, and emission refuses the loop naming them —
// the override makes the loop genuinely non-parallel, and emission must
// not contradict that.
TEST(ClauseDerivation, UserOverrideToSharedRegrowsBlockingEdges) {
  auto s = loadSource(kPrivScalar, "priv-override");
  ASSERT_TRUE(s);
  (void)markParallelLoops(*s, false);
  ASSERT_TRUE(s->selectProcedure(s->procedureNames().front()));
  fortran::StmtId target = fortran::kInvalidStmt;
  for (const auto& row : s->loops()) {
    if (row.headline.find("10") != std::string::npos) target = row.id;
  }
  ASSERT_NE(target, fortran::kInvalidStmt);
  ASSERT_TRUE(s->selectLoop(target));
  ASSERT_TRUE(s->classifyVariable("T", /*asPrivate=*/false, "user says no"));
  const emit::EmissionReport rep = s->emitOpenMP();
  ASSERT_TRUE(rep.ran) << rep.error;
  const emit::LoopEmission* le = rowFor(rep, target);
  ASSERT_NE(le, nullptr);
  EXPECT_FALSE(le->emitted);
  bool namesT = false;
  for (const emit::BlockingEdge& be : le->blocking) {
    if (be.variable == "T") namesT = true;
  }
  EXPECT_TRUE(namesT) << le->refusal;
}

// A read-only scalar the user asserts private becomes FIRSTPRIVATE: its
// upward-exposed read needs the copy-in value.
constexpr char kReadOnlyScalar[] =
    "      PROGRAM FPRIV\n"
    "      DIMENSION A(40), B(40)\n"
    "      X = 3.0\n"
    "      DO 5 I = 1, 40\n"
    "        A(I) = FLOAT(I)\n"
    "5     CONTINUE\n"
    "      DO 10 I = 1, 40\n"
    "        B(I) = A(I) + X\n"
    "10    CONTINUE\n"
    "      PRINT *, B(3)\n"
    "      END\n";

TEST(ClauseDerivation, UserOverrideToPrivateOnReadOnlyIsFirstPrivate) {
  auto s = loadSource(kReadOnlyScalar, "fpriv");
  ASSERT_TRUE(s);
  (void)markParallelLoops(*s, false);
  ASSERT_TRUE(s->selectProcedure(s->procedureNames().front()));
  fortran::StmtId target = fortran::kInvalidStmt;
  for (const auto& row : s->loops()) {
    if (row.headline.find("10") != std::string::npos) target = row.id;
  }
  ASSERT_NE(target, fortran::kInvalidStmt);
  ASSERT_TRUE(s->selectLoop(target));
  ASSERT_TRUE(
      s->classifyVariable("X", /*asPrivate=*/true, "thread-local copy"));
  const emit::EmissionReport rep = s->emitOpenMP();
  ASSERT_TRUE(rep.ran) << rep.error;
  const emit::LoopEmission* le = rowFor(rep, target);
  ASSERT_NE(le, nullptr);
  ASSERT_TRUE(le->emitted) << le->refusal;
  EXPECT_TRUE(payloadLists(le->payload, "FIRSTPRIVATE", "X")) << le->payload;
  EXPECT_TRUE(le->relativeChecked);
  EXPECT_FALSE(le->relativeDiverged) << le->evidence;
}

// ---------------------------------------------------------------------------
// Relative validation demotes unsound emissions
// ---------------------------------------------------------------------------

// The carried dependence on A is real (K = 1 at runtime), but a user
// deletion of the Pending edge makes the loop eligible. Emission must not
// trust the deletion: the shuffled schedules diverge from the serial run
// and the loop demotes to refused.
constexpr char kUnsoundDeletion[] =
    "      PROGRAM UDEL\n"
    "      DIMENSION A(200)\n"
    "      READ *, K\n"
    "      DO 10 I = 1, 50\n"
    "        A(I+K) = A(I) + 1.0\n"
    "10    CONTINUE\n"
    "      PRINT *, A(51)\n"
    "      END\n";

TEST(Emission, UnsoundDeletionDemotedByRelativeValidation) {
  auto s = loadSource(kUnsoundDeletion, "udel");
  ASSERT_TRUE(s);
  ASSERT_TRUE(s->selectProcedure("UDEL"));
  // Reject every carried edge on A (the unsound deletions), then mark.
  std::vector<std::uint32_t> ids;
  for (const dep::Dependence& d : s->workspace().graph->all()) {
    if (d.variable == "A" && d.level > 0) ids.push_back(d.id);
  }
  ASSERT_FALSE(ids.empty());
  for (std::uint32_t id : ids) {
    ASSERT_TRUE(s->markDependence(id, dep::DepMark::Rejected,
                                  "user asserts no overlap", "test"));
  }
  fortran::StmtId loopId = fortran::kInvalidStmt;
  for (const auto& row : s->loops()) loopId = row.id;
  ASSERT_NE(loopId, fortran::kInvalidStmt);
  transform::Target t;
  t.loop = loopId;
  std::string err;
  ASSERT_TRUE(s->applyTransformation("Sequential to Parallel", t, &err))
      << err;
  emit::EmitOptions opts;
  opts.run.input = {1.0};  // K = 1 at runtime: the deleted edge is real
  const emit::EmissionReport rep = s->emitOpenMP(opts);
  ASSERT_TRUE(rep.ran) << rep.error;
  const emit::LoopEmission* le = rowFor(rep, loopId);
  ASSERT_NE(le, nullptr);
  EXPECT_FALSE(le->emitted) << "unsound deletion must not emit";
  EXPECT_TRUE(le->relativeChecked);
  EXPECT_TRUE(le->relativeDiverged);
  EXPECT_NE(le->refusal.find("relative validation diverged"),
            std::string::npos)
      << le->refusal;
  EXPECT_GT(le->serialExecutions, 0);
}

// ---------------------------------------------------------------------------
// Directive wrapping and re-lexing
// ---------------------------------------------------------------------------

TEST(Wrapping, LongDirectiveStaysWithin72ColumnsAndRelexes) {
  // Build a payload long enough to need several continuation lines.
  std::vector<emit::Clause> clauses;
  for (char c = 'A'; c <= 'Z'; ++c) {
    emit::Clause cl;
    cl.kind = emit::ClauseKind::Shared;
    cl.variable = std::string("VAR") + c + "LONGISH";
    clauses.push_back(cl);
  }
  clauses.push_back({emit::ClauseKind::Private, "I"});
  const std::string payload = emit::renderPayload(clauses);
  const std::string text = fortran::wrapOmpDirective(payload);

  // Every physical line fits fixed-form column 72 and carries the sentinel.
  std::size_t lines = 0;
  std::size_t at = 0;
  while (at < text.size()) {
    std::size_t nl = text.find('\n', at);
    ASSERT_NE(nl, std::string::npos) << "directive lines end in newline";
    const std::string line = text.substr(at, nl - at);
    EXPECT_LE(line.size(), 72u) << line;
    if (lines == 0) {
      EXPECT_EQ(line.rfind("!$OMP ", 0), 0u) << line;
    } else {
      EXPECT_EQ(line.rfind("!$OMP& ", 0), 0u) << line;
    }
    at = nl + 1;
    ++lines;
  }
  EXPECT_GE(lines, 3u) << "payload long enough to wrap";

  // The lexer reassembles the continuations to the exact payload.
  DiagnosticEngine diags;
  fortran::Lexer lx(text, diags);
  lx.run();
  ASSERT_EQ(lx.ompDirectives().size(), 1u);
  EXPECT_EQ(lx.ompDirectives().front().text, payload);
}

TEST(Wrapping, EmittedDeckLinesFitFixedForm) {
  auto s = loadSource(kReduction, "red-cols");
  ASSERT_TRUE(s);
  (void)markParallelLoops(*s, false);
  emit::EmitOptions opts;
  opts.relativeValidation = false;
  const emit::EmissionReport rep = s->emitOpenMP(opts);
  ASSERT_TRUE(rep.ran);
  std::size_t at = 0;
  while (at < rep.deckText.size()) {
    std::size_t nl = rep.deckText.find('\n', at);
    if (nl == std::string::npos) nl = rep.deckText.size();
    const std::string line = rep.deckText.substr(at, nl - at);
    if (line.rfind("!$OMP", 0) == 0) {
      EXPECT_LE(line.size(), 72u) << line;
    }
    at = nl + 1;
  }
}

// ---------------------------------------------------------------------------
// Fixed point on the eight workshop decks
// ---------------------------------------------------------------------------

class EmissionDecks : public ::testing::TestWithParam<const char*> {};

// Every PARALLEL-marked loop on the deck either emits a directive that
// round-trips to a byte-identical dependence graph, or is refused with the
// blocking edges named — zero silent drops, at every thread count.
TEST_P(EmissionDecks, EmitReparseReanalyzeFixedPoint) {
  const std::string deck = GetParam();
  auto s = loadDeck(deck);
  ASSERT_TRUE(s);
  (void)markParallelLoops(*s, /*forceAllLoops=*/true);
  const emit::EmissionReport rep = s->emitOpenMP();
  ASSERT_TRUE(rep.ran) << rep.error;
  EXPECT_EQ(rep.loopsConsidered,
            static_cast<int>(rep.loops.size()));
  EXPECT_EQ(rep.loopsEmitted + rep.loopsRefused, rep.loopsConsidered);
  for (const emit::LoopEmission& le : rep.loops) {
    if (le.emitted) {
      EXPECT_FALSE(le.payload.empty());
      EXPECT_EQ(le.payload.rfind("PARALLEL DO DEFAULT(NONE)", 0), 0u);
    } else {
      EXPECT_FALSE(le.refusal.empty())
          << deck << " stmt" << le.loop << " dropped silently";
    }
  }
  ASSERT_TRUE(rep.roundTripChecked);
  EXPECT_TRUE(rep.roundTripOk) << deck << ": " << rep.roundTripDetail;
  EXPECT_EQ(rep.roundTripThreads, (std::vector<int>{1, 2, 4, 8}));
}

// Emission eligibility is a program property, not a scheduling artifact:
// the emitted/refused partition is identical after analysis at 1/2/4/8
// threads.
TEST_P(EmissionDecks, PartitionStableAcrossAnalysisThreadCounts) {
  const std::string deck = GetParam();
  std::string want;
  for (int threads : {1, 2, 4, 8}) {
    auto s = loadDeck(deck);
    ASSERT_TRUE(s);
    s->analyzeParallel(threads);
    (void)markParallelLoops(*s, /*forceAllLoops=*/true);
    emit::EmitOptions opts;
    opts.relativeValidation = false;  // partition only; keep the test fast
    opts.roundTrip = false;
    const emit::EmissionReport rep = s->emitOpenMP(opts);
    ASSERT_TRUE(rep.ran) << rep.error;
    std::string got;
    for (const emit::LoopEmission& le : rep.loops) {
      got += le.procedure + " stmt" + std::to_string(le.loop) +
             (le.emitted ? " " + le.payload : " REFUSED " + le.refusal) +
             "\n";
    }
    if (threads == 1) {
      want = got;
      EXPECT_FALSE(want.empty()) << deck << " considered no loops";
    } else {
      EXPECT_EQ(got, want) << deck << " at " << threads << " threads";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(All, EmissionDecks,
                         ::testing::Values("spec77", "neoss", "nxsns",
                                           "dpmin", "slab2d", "slalom",
                                           "pueblo3d", "arc3d"),
                         [](const ::testing::TestParamInfo<const char*>& i) {
                           return std::string(i.param);
                         });

// ---------------------------------------------------------------------------
// Emission evidence persists in the program database
// ---------------------------------------------------------------------------

class ScopedFile {
 public:
  explicit ScopedFile(std::string path) : path_(std::move(path)) {}
  ~ScopedFile() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

TEST(EmissionPersistence, ReportSurvivesPdbRoundTrip) {
  auto s = loadSource(kReduction, "red-pdb");
  ASSERT_TRUE(s);
  (void)markParallelLoops(*s, false);
  const emit::EmissionReport orig = s->emitOpenMP();
  ASSERT_TRUE(orig.ran) << orig.error;
  ASSERT_GT(orig.loopsEmitted, 0);

  ScopedFile store("emission.red.pspdb");
  ASSERT_TRUE(s->savePdb(store.path()));

  for (int threads : {1, 4}) {
    DiagnosticEngine diags;
    auto warm =
        ped::Session::openWarm(kReduction, store.path(), diags, threads);
    ASSERT_NE(warm, nullptr);
    const emit::EmissionReport& r = warm->lastEmission();
    ASSERT_TRUE(r.ran) << "emission evidence lost across reopen @" << threads;
    ASSERT_EQ(r.loops.size(), orig.loops.size());
    for (std::size_t i = 0; i < r.loops.size(); ++i) {
      EXPECT_EQ(r.loops[i].procedure, orig.loops[i].procedure);
      EXPECT_EQ(r.loops[i].loop, orig.loops[i].loop);
      EXPECT_EQ(r.loops[i].emitted, orig.loops[i].emitted);
      EXPECT_EQ(r.loops[i].payload, orig.loops[i].payload);
      EXPECT_EQ(r.loops[i].relativeChecked, orig.loops[i].relativeChecked);
      EXPECT_EQ(r.loops[i].serialExecutions, orig.loops[i].serialExecutions);
    }
    EXPECT_EQ(r.loopsEmitted, orig.loopsEmitted);
    EXPECT_EQ(r.loopsRefused, orig.loopsRefused);
  }
}

// The sweep driver aggregates without losing loops, and its invariants
// hold on the real corpus.
TEST(EmissionSweepTest, CorpusSweepHoldsInvariants) {
  EmissionDriverOptions opts;
  opts.forceAllLoops = true;
  const EmissionSweep sw = emitAllDecks(opts);
  EXPECT_EQ(sw.decks.size(), all().size());
  EXPECT_TRUE(sw.allDecksRan);
  EXPECT_TRUE(sw.allRoundTripsOk);
  EXPECT_TRUE(sw.zeroSilentDrops);
  EXPECT_GT(sw.loopsConsidered, 0);
  EXPECT_GT(sw.loopsEmitted, 0);
  EXPECT_GT(sw.loopsRefused, 0) << "forced marks must exercise refusals";
  int histogramTotal = 0;
  for (const auto& [k, n] : sw.clauseHistogram) histogramTotal += n;
  EXPECT_GT(histogramTotal, 0);
}

}  // namespace
}  // namespace ps::workloads
