// Edit-storm determinism suite for the dirty-set-driven parallel
// incremental re-analysis path.
//
// A fixed-seed generator drives the same sequence of statement-level edits
// (rewrite / insert / delete, the fuzz harness's generator idiom) through
// six lockstep sessions per deck:
//
//   - seq:    the sequential inline-incremental reference (every edit
//             settles its dirty set immediately),
//   - par(t): deferred-analysis sessions for t in {1, 2, 4, 8} — each edit
//             accumulates the dirty set, then analyzeParallel(t) schedules
//             exactly that set, splicing clean nests under the DepMemo
//             generation protocol,
//   - full:   a from-scratch fullReanalysis() after every edit.
//
// After EVERY edit the observable analysis state — every field of every
// dependence edge in every procedure, the degradation report, and a deep
// audit — must be bit-identical across all six. This is the tentpole's
// hard invariant; the suite also runs under TSan in CI.
//
// Edit count: PS_STORM_EDITS overrides the default (6) per deck.

#include <gtest/gtest.h>

#include <cctype>
#include <cstdlib>
#include <memory>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "dependence/graph.h"
#include "fortran/pretty.h"
#include "ped/session.h"
#include "support/diagnostics.h"
#include "workloads/workloads.h"

namespace ps::workloads {
namespace {

int stormEdits() {
  if (const char* env = std::getenv("PS_STORM_EDITS")) {
    int n = std::atoi(env);
    if (n > 0) return n;
  }
  return 6;
}

std::unique_ptr<ped::Session> loadDeck(const std::string& name) {
  const Workload* w = byName(name);
  if (!w) return nullptr;
  ps::DiagnosticEngine diags;
  auto session = ped::Session::load(w->source, diags);
  if (!session || diags.hasErrors()) return nullptr;
  return session;
}

std::string serializeDep(const dep::Dependence& d) {
  std::ostringstream os;
  os << d.id << ' ' << dep::depTypeName(d.type) << ' ' << d.srcStmt << "->"
     << d.dstStmt << ' ' << d.variable;
  if (d.srcRef) os << " src=" << fortran::printExpr(*d.srcRef);
  if (d.dstRef) os << " dst=" << fortran::printExpr(*d.dstRef);
  os << " level=" << d.level << " carrier=" << d.carrierLoop
     << " common=" << d.commonLoop << " vec=" << d.vector.str() << ' '
     << dep::depMarkName(d.mark) << " origin=" << static_cast<int>(d.origin)
     << " interproc=" << d.interprocedural << " degraded=" << d.degraded
     << " reason=" << d.reason;
  return os.str();
}

/// Everything observable about a session's analysis results: per-procedure
/// dependence graphs (every field of every edge, in edge order), the
/// degradation report, and a deep audit.
std::string snapshot(ped::Session& s) {
  std::ostringstream os;
  for (const std::string& name : s.procedureNames()) {
    EXPECT_TRUE(s.selectProcedure(name));
    os << "== " << name << '\n';
    for (const dep::Dependence& d : s.workspace().graph->all()) {
      os << serializeDep(d) << '\n';
    }
  }
  ped::DegradationReport rep = s.degradationReport();
  os << "degradation fm=" << rep.fmDegraded
     << " answers=" << rep.degradedAnswers
     << " linearize=" << rep.linearizeDegraded
     << " symbolic=" << rep.symbolicTruncated << '\n';
  for (const auto& e : rep.edges) {
    os << "degraded-edge " << e.procedure << ' ' << e.depId << ' ' << e.type
       << ' ' << e.variable << " level=" << e.level << '\n';
  }
  audit::Report audit = s.auditNow(true);
  os << "audit ok=" << audit.ok() << '\n';
  for (const auto& v : audit.violations) os << "violation " << v.str() << '\n';
  return os.str();
}

using Rng = std::mt19937;

std::size_t pick(Rng& rng, std::size_t n) {
  return n == 0 ? 0 : std::uniform_int_distribution<std::size_t>(0, n - 1)(rng);
}

struct EditStep {
  enum class Kind { Rewrite, Insert, Delete };
  Kind kind = Kind::Rewrite;
  std::string proc;
  fortran::StmtId stmt = fortran::kInvalidStmt;
  std::string text;  // Rewrite/Insert payload
};

/// Generate the next step against the reference session's current state.
/// Targets are unlabeled scalar/array assignment statements so every step
/// is a valid edit that keeps the deck auditable; the resulting statement
/// id is applied verbatim to the other sessions (ids stay in lockstep: all
/// sessions perform the same program-order id assignments).
bool nextStep(ped::Session& s, Rng& rng, EditStep* step) {
  const std::vector<std::string> procs = s.procedureNames();
  // Try a few procedures before giving up (a deck could run out of
  // editable assignments after enough deletions).
  for (int attempt = 0; attempt < 8; ++attempt) {
    const std::string& proc = procs[pick(rng, procs.size())];
    if (!s.selectProcedure(proc)) continue;
    struct Cand {
      fortran::StmtId stmt;
      std::string text;
    };
    std::vector<Cand> cands;
    for (const auto& row : s.sourcePane()) {
      if (row.loopStart) continue;
      if (row.text.rfind("IF", 0) == 0) continue;
      if (row.text.rfind("CALL", 0) == 0) continue;
      if (row.text.rfind("GOTO", 0) == 0) continue;
      // Labeled statements may be branch targets; deleting or replacing
      // them is a different (checked) operation.
      if (!row.text.empty() &&
          std::isdigit(static_cast<unsigned char>(row.text[0]))) {
        continue;
      }
      std::size_t eq = row.text.find(" = ");
      if (eq == std::string::npos) continue;
      cands.push_back({row.stmt, row.text});
    }
    if (cands.empty()) continue;
    const Cand& c = cands[pick(rng, cands.size())];
    step->proc = proc;
    step->stmt = c.stmt;
    switch (pick(rng, 4)) {
      case 0:
      case 1: {
        // Rewrite: wrap the RHS so subscripts and the variable set are
        // preserved but the statement text (and splice signature) moves.
        std::size_t eq = c.text.find(" = ");
        step->kind = EditStep::Kind::Rewrite;
        step->text = c.text.substr(0, eq) + " = (" +
                     c.text.substr(eq + 3) + ")*2";
        break;
      }
      case 2:
        step->kind = EditStep::Kind::Insert;
        step->text = "QSTORM = QSTORM + 1";
        break;
      default:
        step->kind = EditStep::Kind::Delete;
        break;
    }
    return true;
  }
  return false;
}

bool applyStep(ped::Session& s, const EditStep& step) {
  EXPECT_TRUE(s.selectProcedure(step.proc));
  switch (step.kind) {
    case EditStep::Kind::Rewrite:
      return s.editStatement(step.stmt, step.text);
    case EditStep::Kind::Insert:
      return s.insertStatementAfter(step.stmt, step.text);
    case EditStep::Kind::Delete:
      return s.deleteStatement(step.stmt);
  }
  return false;
}

class EditStorm : public ::testing::TestWithParam<std::string> {};

TEST_P(EditStorm, ParallelIncrementalMatchesSequentialAndScratch) {
  const std::string deck = GetParam();
  auto seq = loadDeck(deck);
  auto full = loadDeck(deck);
  ASSERT_NE(seq, nullptr);
  ASSERT_NE(full, nullptr);

  const std::vector<int> threadCounts = {1, 2, 4, 8};
  std::vector<std::unique_ptr<ped::Session>> par;
  for (int t : threadCounts) {
    (void)t;
    auto s = loadDeck(deck);
    ASSERT_NE(s, nullptr);
    s->setDeferredAnalysis(true);
    par.push_back(std::move(s));
  }

  Rng rng(0xED17u ^ static_cast<unsigned>(std::hash<std::string>{}(deck)));
  const int edits = stormEdits();
  for (int k = 0; k < edits; ++k) {
    EditStep step;
    if (!nextStep(*seq, rng, &step)) break;  // deck ran dry of targets

    const bool okSeq = applyStep(*seq, step);
    const bool okFull = applyStep(*full, step);
    EXPECT_EQ(okSeq, okFull) << deck << " edit " << k;
    full->fullReanalysis();
    const std::string want = snapshot(*seq);
    EXPECT_EQ(want, snapshot(*full))
        << deck << " edit " << k << ": incremental diverged from scratch";

    for (std::size_t i = 0; i < par.size(); ++i) {
      const bool okPar = applyStep(*par[i], step);
      EXPECT_EQ(okSeq, okPar)
          << deck << " edit " << k << " @" << threadCounts[i] << " threads";
      ped::ParallelReport rep = par[i]->analyzeParallel(threadCounts[i]);
      if (okSeq) {
        EXPECT_TRUE(rep.incremental)
            << deck << " edit " << k << " @" << threadCounts[i]
            << " threads took the full path";
      }
      EXPECT_EQ(want, snapshot(*par[i]))
          << deck << " edit " << k << " @" << threadCounts[i] << " threads";
    }
  }
}

std::vector<std::string> deckNames() {
  std::vector<std::string> names;
  for (const Workload& w : all()) names.push_back(w.name);
  return names;
}

INSTANTIATE_TEST_SUITE_P(AllDecks, EditStorm,
                         ::testing::ValuesIn(deckNames()));

}  // namespace
}  // namespace ps::workloads
