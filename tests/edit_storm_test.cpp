// Edit-storm determinism suite for the dirty-set-driven parallel
// incremental re-analysis path.
//
// A fixed-seed generator drives the same sequence of statement-level edits
// (rewrite / insert / delete, the fuzz harness's generator idiom) through
// six lockstep sessions per deck:
//
//   - seq:    the sequential inline-incremental reference (every edit
//             settles its dirty set immediately),
//   - par(t): deferred-analysis sessions for t in {1, 2, 4, 8, 16} — each edit
//             accumulates the dirty set, then analyzeParallel(t) schedules
//             exactly that set, splicing clean nests under the DepMemo
//             generation protocol,
//   - full:   a from-scratch fullReanalysis() after every edit.
//
// After EVERY edit the observable analysis state — every field of every
// dependence edge in every procedure, the degradation report, and a deep
// audit — must be bit-identical across all six. This is the tentpole's
// hard invariant; the suite also runs under TSan in CI.
//
// The snapshot and the edit generator live in workloads/harness.{h,cpp},
// shared with the persistent-program-database warm-start suites.
//
// Edit count: PS_STORM_EDITS overrides the default (6) per deck.

#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "ped/session.h"
#include "workloads/harness.h"
#include "workloads/workloads.h"

namespace ps::workloads {
namespace {

int stormEdits() {
  if (const char* env = std::getenv("PS_STORM_EDITS")) {
    int n = std::atoi(env);
    if (n > 0) return n;
  }
  return 6;
}

class EditStorm : public ::testing::TestWithParam<std::string> {};

TEST_P(EditStorm, ParallelIncrementalMatchesSequentialAndScratch) {
  const std::string deck = GetParam();
  auto seq = loadDeck(deck);
  auto full = loadDeck(deck);
  ASSERT_NE(seq, nullptr);
  ASSERT_NE(full, nullptr);

  const std::vector<int> threadCounts = {1, 2, 4, 8, 16};
  std::vector<std::unique_ptr<ped::Session>> par;
  for (int t : threadCounts) {
    (void)t;
    auto s = loadDeck(deck);
    ASSERT_NE(s, nullptr);
    s->setDeferredAnalysis(true);
    par.push_back(std::move(s));
  }

  Rng rng(0xED17u ^ static_cast<unsigned>(std::hash<std::string>{}(deck)));
  const int edits = stormEdits();
  for (int k = 0; k < edits; ++k) {
    EditStep step;
    if (!nextStep(*seq, rng, &step)) break;  // deck ran dry of targets

    const bool okSeq = applyStep(*seq, step);
    const bool okFull = applyStep(*full, step);
    EXPECT_EQ(okSeq, okFull) << deck << " edit " << k;
    full->fullReanalysis();
    const std::string want = analysisSnapshot(*seq);
    EXPECT_EQ(want, analysisSnapshot(*full))
        << deck << " edit " << k << ": incremental diverged from scratch";

    for (std::size_t i = 0; i < par.size(); ++i) {
      const bool okPar = applyStep(*par[i], step);
      EXPECT_EQ(okSeq, okPar)
          << deck << " edit " << k << " @" << threadCounts[i] << " threads";
      ped::ParallelReport rep = par[i]->analyzeParallel(threadCounts[i]);
      if (okSeq) {
        EXPECT_TRUE(rep.incremental)
            << deck << " edit " << k << " @" << threadCounts[i]
            << " threads took the full path";
      }
      EXPECT_EQ(want, analysisSnapshot(*par[i]))
          << deck << " edit " << k << " @" << threadCounts[i] << " threads";
    }
  }
}

std::vector<std::string> deckNames() {
  std::vector<std::string> names;
  for (const Workload& w : all()) names.push_back(w.name);
  return names;
}

INSTANTIATE_TEST_SUITE_P(AllDecks, EditStorm,
                         ::testing::ValuesIn(deckNames()));

}  // namespace
}  // namespace ps::workloads
