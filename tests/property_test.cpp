// Property tests across module boundaries:
//  1. Dependence soundness: the analyzer may over-approximate but must
//     never miss a dependence that brute-force iteration enumeration finds.
//  2. Parallelizable implies race-free: loops the graph calls parallel run
//     clean under the shuffled-order race detector.
//  3. Pretty-print round trips preserve execution semantics.
//  4. Fourier–Motzkin soundness against brute-force integer search.
#include <gtest/gtest.h>

#include <map>
#include <random>
#include <set>
#include <string>

#include "dependence/fm.h"
#include "dependence/graph.h"
#include "fortran/parser.h"
#include "fortran/pretty.h"
#include "interp/machine.h"
#include "interproc/summaries.h"
#include "ped/session.h"
#include "support/diagnostics.h"
#include "workloads/workloads.h"

namespace ps {
namespace {

// ---------------------------------------------------------------------------
// 1. Dependence soundness on a family of single loops
//    DO I = 1, N:  A(a1*I + c1) = f(A(a2*I + c2))
// ---------------------------------------------------------------------------

struct SubscriptCase {
  long long a1, c1, a2, c2;
  long long n;
};

class DependenceSoundness
    : public ::testing::TestWithParam<SubscriptCase> {};

TEST_P(DependenceSoundness, AnalyzerNeverMissesARealDependence) {
  const SubscriptCase& p = GetParam();
  // Build the program text.
  auto term = [](long long a, long long c) {
    std::string s;
    if (a == 1) {
      s = "I";
    } else {
      s = std::to_string(a) + "*I";
    }
    if (c > 0) s += " + " + std::to_string(c);
    if (c < 0) s += " - " + std::to_string(-c);
    return s;
  };
  std::string src = "      SUBROUTINE S(A)\n      REAL A(1000)\n"
                    "      DO I = 1, " +
                    std::to_string(p.n) + "\n        A(" + term(p.a1, p.c1) +
                    ") = A(" + term(p.a2, p.c2) +
                    ") + 1.0\n      ENDDO\n      END\n";
  DiagnosticEngine diags;
  auto prog = fortran::parseSource(src, diags);
  ASSERT_FALSE(diags.hasErrors()) << diags.dump();
  ir::ProcedureModel model(*prog->units[0]);
  auto g = dep::DependenceGraph::build(model, {});
  bool analyzerSaysParallel = g.parallelizable(*model.topLevelLoops()[0]);

  // Brute force: a loop-carried dependence exists iff two different
  // iterations touch the same element with at least one write.
  bool realCarried = false;
  std::map<long long, std::set<long long>> writers, readers;
  for (long long i = 1; i <= p.n; ++i) {
    writers[p.a1 * i + p.c1].insert(i);
    readers[p.a2 * i + p.c2].insert(i);
  }
  for (const auto& [addr, ws] : writers) {
    if (ws.size() > 1) realCarried = true;  // write-write
    auto it = readers.find(addr);
    if (it == readers.end()) continue;
    for (long long r : it->second) {
      if (!ws.count(r) || ws.size() > 1) {
        if (*ws.begin() != r || ws.size() > 1) realCarried = true;
      }
    }
  }
  // Soundness: a real carried dependence must serialize the loop.
  if (realCarried) {
    EXPECT_FALSE(analyzerSaysParallel)
        << "missed dependence for a1=" << p.a1 << " c1=" << p.c1
        << " a2=" << p.a2 << " c2=" << p.c2 << "\n"
        << src;
  }
  // And confirm dynamically via the race detector when the analyzer says
  // parallel.
  if (analyzerSaysParallel) {
    std::string exec = "      PROGRAM MAIN\n      REAL A(1000)\n"
                       "      DO K = 1, 1000\n        A(K) = FLOAT(K)\n"
                       "      ENDDO\n      PARALLEL DO I = 1, " +
                       std::to_string(p.n) + "\n        A(" +
                       term(p.a1, p.c1) + ") = A(" + term(p.a2, p.c2) +
                       ") + 1.0\n      ENDDO\n      WRITE(6, *) A(1)\n"
                       "      END\n";
    DiagnosticEngine d2;
    auto prog2 = fortran::parseSource(exec, d2);
    ASSERT_FALSE(d2.hasErrors());
    interp::Machine m(*prog2);
    auto run = m.run();
    ASSERT_TRUE(run.ok) << run.error;
    for (const auto& race : run.races) {
      EXPECT_TRUE(race.outputOnly)
          << "race detector contradicts the analyzer on " << src;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DependenceSoundness,
    ::testing::Values(
        SubscriptCase{1, 0, 1, 0, 40},    // A(I) = A(I): independent
        SubscriptCase{1, 0, 1, -1, 40},   // flow distance 1
        SubscriptCase{1, 0, 1, 1, 40},    // anti distance 1
        SubscriptCase{1, 0, 1, -5, 40},   // flow distance 5
        SubscriptCase{2, 0, 2, -2, 40},   // stride 2, distance 1
        SubscriptCase{2, 0, 2, -1, 40},   // stride 2, odd offset: none
        SubscriptCase{1, 0, 2, 0, 30},    // MIV-ish: real deps exist
        SubscriptCase{3, 1, 3, 4, 30},    // 3I+1 vs 3I+4: distance 1
        SubscriptCase{3, 1, 3, 5, 30},    // gcd disproof
        SubscriptCase{1, 0, 1, 100, 40},  // distance beyond trip count
        SubscriptCase{2, 1, 4, 3, 25},    // 2I+1 vs 4I+3: overlap
        SubscriptCase{4, 0, 2, 2, 25}));  // 4I vs 2I+2: overlap

// ---------------------------------------------------------------------------
// 2/3. Workload round trips: pretty-print -> reparse -> execute must match,
//      and analyzer-parallel loops must run race-free when marked parallel.
// ---------------------------------------------------------------------------

class WorkloadProperty : public ::testing::TestWithParam<std::string> {};

TEST_P(WorkloadProperty, PrettyPrintRoundTripPreservesExecution) {
  const auto* w = workloads::byName(GetParam());
  DiagnosticEngine diags;
  auto prog = fortran::parseSource(w->source, diags);
  ASSERT_FALSE(diags.hasErrors()) << diags.dump();
  interp::Machine m1(*prog);
  auto r1 = m1.run();
  ASSERT_TRUE(r1.ok) << r1.error;

  std::string printed = fortran::printProgram(*prog);
  DiagnosticEngine d2;
  auto prog2 = fortran::parseSource(printed, d2);
  ASSERT_FALSE(d2.hasErrors()) << d2.dump() << "\n" << printed;
  interp::Machine m2(*prog2);
  auto r2 = m2.run();
  ASSERT_TRUE(r2.ok) << r2.error;
  EXPECT_TRUE(r1.outputEquals(r2)) << printed;
}

TEST_P(WorkloadProperty, AnalyzerParallelLoopsRunRaceFree) {
  const auto* w = workloads::byName(GetParam());
  DiagnosticEngine diags;
  auto prog = fortran::parseSource(w->source, diags);
  ASSERT_FALSE(diags.hasErrors());
  interp::Machine base(*prog);
  auto r0 = base.run();
  ASSERT_TRUE(r0.ok) << r0.error;

  // Mark every analyzer-parallel loop PARALLEL (innermost-safe marking:
  // mark all; nested parallel loops are fine for the detector).
  interproc::SummaryBuilder summaries(*prog);
  for (auto& unit : prog->units) {
    ir::ProcedureModel model(*unit);
    interproc::InterproceduralOracle oracle(summaries, *unit);
    dep::AnalysisContext ctx;
    ctx.oracle = &oracle;
    ctx.inheritedConstants = summaries.inheritedConstantsFor(unit->name);
    ctx.inheritedRelations = summaries.inheritedRelationsFor(unit->name);
    auto g = dep::DependenceGraph::build(model, ctx);
    for (const auto& loopPtr : model.loops()) {
      if (g.parallelizable(*loopPtr)) loopPtr->stmt->isParallel = true;
    }
  }
  interp::Machine m(*prog);
  interp::RunOptions opts;
  opts.shuffleSeed = 777;
  auto r = m.run(opts);
  ASSERT_TRUE(r.ok) << w->name << ": " << r.error;
  // Outputs must match the sequential run despite shuffled iteration
  // order, and no flow/anti race may fire. (Assertion-based parallelism in
  // the workloads is genuinely safe, so this also validates the
  // assertions dynamically — the paper's run-time-checkability criterion.)
  EXPECT_TRUE(r0.outputEquals(r, 1e-6)) << w->name;
  for (const auto& race : r.races) {
    EXPECT_TRUE(race.outputOnly) << w->name << " race on " << race.variable;
  }
}

INSTANTIATE_TEST_SUITE_P(
    All, WorkloadProperty,
    ::testing::Values("spec77", "neoss", "nxsns", "dpmin", "slab2d",
                      "slalom", "pueblo3d", "arc3d"),
    [](const ::testing::TestParamInfo<std::string>& info) {
      return info.param;
    });

// ---------------------------------------------------------------------------
// 4. Fourier–Motzkin soundness: randomized small systems, brute-force
//    integer search as ground truth. FM claiming "infeasible" must mean no
//    integer solution exists in a generous search box.
// ---------------------------------------------------------------------------

TEST(FMProperty, InfeasibleNeverContradictsBruteForce) {
  std::mt19937 rng(20260706);
  std::uniform_int_distribution<int> coefD(-3, 3), constD(-8, 8),
      kindD(0, 2);
  const char* vars[] = {"x", "y", "z"};
  int disproofs = 0;
  for (int trial = 0; trial < 400; ++trial) {
    std::vector<dep::Constraint> cs;
    int nc = 2 + static_cast<int>(rng() % 3);
    for (int c = 0; c < nc; ++c) {
      dataflow::LinearExpr e;
      for (const char* v : vars) {
        int k = coefD(rng);
        if (k != 0) e.coef[v] = k;
      }
      e.constant = constD(rng);
      switch (kindD(rng)) {
        case 0: cs.push_back(dep::Constraint::ge0(e)); break;
        case 1: cs.push_back(dep::Constraint::gt0(e)); break;
        default: cs.push_back(dep::Constraint::eq0(e)); break;
      }
    }
    dep::FourierMotzkin fm(cs);
    if (!fm.infeasible()) continue;
    ++disproofs;
    // Brute force over [-12, 12]^3.
    bool found = false;
    for (int x = -12; x <= 12 && !found; ++x) {
      for (int y = -12; y <= 12 && !found; ++y) {
        for (int z = -12; z <= 12 && !found; ++z) {
          bool ok = true;
          for (const auto& c : cs) {
            long long v = c.expr.constant +
                          c.expr.coefOf("x") * x + c.expr.coefOf("y") * y +
                          c.expr.coefOf("z") * z;
            if (c.kind == dep::Constraint::Kind::Ge0 && v < 0) ok = false;
            if (c.kind == dep::Constraint::Kind::Gt0 && v <= 0) ok = false;
            if (c.kind == dep::Constraint::Kind::Eq0 && v != 0) ok = false;
          }
          if (ok) found = true;
        }
      }
    }
    EXPECT_FALSE(found) << "FM declared infeasible but a solution exists "
                           "(trial "
                        << trial << ")";
  }
  // The sweep must actually exercise the disproof path.
  EXPECT_GT(disproofs, 20);
}

// ---------------------------------------------------------------------------
// 5. Session editing is incremental and consistent.
// ---------------------------------------------------------------------------

TEST(Editing, EditStatementReanalyzesIncrementally) {
  const char* src =
      "      SUBROUTINE S(A, N)\n"
      "      REAL A(N)\n"
      "      DO I = 2, N\n"
      "        A(I) = A(I - 1) + 1.0\n"
      "      ENDDO\n"
      "      END\n";
  DiagnosticEngine diags;
  auto s = ped::Session::load(src, diags);
  ASSERT_NE(s, nullptr);
  auto loops = s->loops();
  EXPECT_FALSE(loops[0].parallelizable);
  // Find the assignment and edit away the recurrence.
  fortran::StmtId assign = fortran::kInvalidStmt;
  for (const auto& row : s->sourcePane()) {
    if (row.text.find("A(I - 1)") != std::string::npos) assign = row.stmt;
  }
  ASSERT_NE(assign, fortran::kInvalidStmt);
  ASSERT_TRUE(s->editStatement(assign, "A(I) = FLOAT(I) + 1.0"));
  loops = s->loops();
  EXPECT_TRUE(loops[0].parallelizable);
  // And back to a recurrence.
  assign = fortran::kInvalidStmt;
  for (const auto& row : s->sourcePane()) {
    if (row.text.find("FLOAT(I)") != std::string::npos) assign = row.stmt;
  }
  ASSERT_TRUE(s->editStatement(assign, "A(I) = A(I - 1)*0.5"));
  EXPECT_FALSE(s->loops()[0].parallelizable);
}

TEST(Editing, BadTextIsRejectedAndProgramUntouched) {
  const char* src =
      "      SUBROUTINE S(X)\n"
      "      X = 1.0\n"
      "      END\n";
  DiagnosticEngine diags;
  auto s = ped::Session::load(src, diags);
  auto before = fortran::printProgram(s->program());
  fortran::StmtId id = s->sourcePane()[0].stmt;
  EXPECT_FALSE(s->editStatement(id, ")=(nonsense"));
  EXPECT_EQ(fortran::printProgram(s->program()), before);
}

TEST(Editing, InsertAndDelete) {
  const char* src =
      "      PROGRAM MAIN\n"
      "      REAL A(10)\n"
      "      DO I = 1, 10\n"
      "        A(I) = 1.0\n"
      "      ENDDO\n"
      "      END\n";
  DiagnosticEngine diags;
  auto s = ped::Session::load(src, diags);
  fortran::StmtId assign = fortran::kInvalidStmt;
  for (const auto& row : s->sourcePane()) {
    if (row.text.find("= 1") != std::string::npos) assign = row.stmt;
  }
  ASSERT_TRUE(s->insertStatementAfter(assign, "A(I) = A(I)*2.0"));
  EXPECT_EQ(s->sourcePane().size(), 3u);
  // The inserted statement executes.
  auto run = s->profile();
  ASSERT_TRUE(run.ok);
  ASSERT_TRUE(s->deleteStatement(assign));
  EXPECT_EQ(s->sourcePane().size(), 2u);
}

// ---------------------------------------------------------------------------
// 6. Incremental update is invisible: after ANY sequence of random edits
//    (and safe transformations), the session's incrementally-maintained
//    graph — spliced edges, warm memo and all — is edge-for-edge identical
//    to a from-scratch build over the same model and context.
// ---------------------------------------------------------------------------

namespace {

std::multiset<std::string> canonicalEdges(const dep::DependenceGraph& g) {
  std::multiset<std::string> out;
  for (const auto& d : g.all()) {
    out.insert(std::string(dep::depTypeName(d.type)) + "|" + d.variable +
               "|" + std::to_string(d.srcStmt) + "|" +
               std::to_string(d.dstStmt) + "|" + std::to_string(d.level) +
               "|" + d.vector.str() + "|" + dep::depMarkName(d.mark));
  }
  return out;
}

}  // namespace

TEST(IncrementalProperty, RandomEditSequenceMatchesScratchBuild) {
  const char* src =
      "      SUBROUTINE S(A, B, C, N)\n"
      "      REAL A(N), B(N), C(N)\n"
      "      DO I = 2, N\n"
      "        A(I) = A(I - 1) + 1.0\n"
      "      ENDDO\n"
      "      DO J = 2, N\n"
      "        B(J) = B(J - 1)*2.0\n"
      "      ENDDO\n"
      "      END\n";
  DiagnosticEngine diags;
  auto s = ped::Session::load(src, diags);
  ASSERT_NE(s, nullptr);
  ASSERT_FALSE(diags.hasErrors()) << diags.dump();

  const char* aEdits[] = {"A(I) = A(I - 1) + 1.0", "A(I) = B(I) + 1.0",
                          "A(I) = A(I)*2.0", "A(I) = A(I + 2) - 1.0"};
  const char* bEdits[] = {"B(J) = B(J - 1)*2.0", "B(J) = 1.0",
                          "B(J) = B(J) + A(J)", "B(J) = B(J + 3) - B(J)"};
  auto findRow = [&](const char* needle) {
    fortran::StmtId id = fortran::kInvalidStmt;
    for (const auto& row : s->sourcePane()) {
      if (row.text.find(needle) != std::string::npos) id = row.stmt;
    }
    return id;
  };

  std::mt19937 rng(20260806);
  for (int step = 0; step < 30; ++step) {
    switch (rng() % 5) {
      case 0: {  // rewrite the A-nest assignment
        fortran::StmtId id = findRow("A(I) =");
        if (id != fortran::kInvalidStmt) {
          ASSERT_TRUE(s->editStatement(id, aEdits[rng() % 4])) << step;
        }
        break;
      }
      case 1: {  // rewrite the B-nest assignment
        fortran::StmtId id = findRow("B(J) =");
        if (id != fortran::kInvalidStmt) {
          ASSERT_TRUE(s->editStatement(id, bEdits[rng() % 4])) << step;
        }
        break;
      }
      case 2: {  // grow the A nest
        fortran::StmtId id = findRow("A(I) =");
        if (id != fortran::kInvalidStmt) {
          ASSERT_TRUE(s->insertStatementAfter(id, "C(I) = A(I) + 2.0"))
              << step;
        }
        break;
      }
      case 3: {  // shrink it back
        fortran::StmtId id = findRow("C(I) =");
        if (id != fortran::kInvalidStmt) {
          ASSERT_TRUE(s->deleteStatement(id)) << step;
        }
        break;
      }
      default: {  // apply whatever safe transformation guidance offers
        auto loops = s->loops();
        if (!loops.empty()) {
          auto menu = s->guidance(loops[rng() % loops.size()].id, true);
          if (!menu.empty()) {
            const auto& pick = menu[rng() % menu.size()];
            std::string err;
            s->applyTransformation(pick.transformation, pick.target, &err);
          }
        }
        break;
      }
    }
    // The invariant: incremental == from-scratch, every single step.
    transform::Workspace& ws = s->workspace();
    dep::AnalysisContext scratch = ws.actx;
    scratch.useMemo = false;
    scratch.memo = nullptr;
    scratch.statsSink = nullptr;
    scratch.incrementalUpdates = false;
    auto fresh = dep::DependenceGraph::build(*ws.model, scratch);
    EXPECT_EQ(canonicalEdges(fresh), canonicalEdges(*ws.graph))
        << "divergence after step " << step << ":\n"
        << fortran::printProgram(s->program());
  }
  // The sweep must actually have exercised the incremental machinery.
  EXPECT_GT(s->analysisStats().pairsSpliced, 0);
  EXPECT_GT(s->analysisStats().memoHits, 0);
}

TEST(Editing, EditedArrayRefsParseInContext) {
  // The edit text references an array: it must parse as an ArrayRef (not a
  // function call) because the session supplies the declaration context.
  const char* src =
      "      SUBROUTINE S(A, B, N)\n"
      "      REAL A(N), B(N)\n"
      "      DO I = 1, N\n"
      "        A(I) = 0.0\n"
      "      ENDDO\n"
      "      END\n";
  DiagnosticEngine diags;
  auto s = ped::Session::load(src, diags);
  fortran::StmtId assign = fortran::kInvalidStmt;
  for (const auto& row : s->sourcePane()) {
    if (row.text.find("= 0") != std::string::npos) assign = row.stmt;
  }
  ASSERT_TRUE(s->editStatement(assign, "A(I) = B(I) + 1.0"));
  // The dependence graph sees the B read (an Input-free True-free graph —
  // but the variable pane must list B).
  s->selectLoop(s->loops()[0].id);
  bool sawB = false;
  for (const auto& v : s->variablePane()) {
    if (v.name == "B" && v.dim == 1) sawB = true;
  }
  EXPECT_TRUE(sawB);
}

}  // namespace
}  // namespace ps
