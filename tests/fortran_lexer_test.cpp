#include "fortran/lexer.h"

#include <gtest/gtest.h>

#include "support/diagnostics.h"

namespace ps::fortran {
namespace {

std::vector<Token> lex(std::string_view src) {
  DiagnosticEngine diags;
  Lexer lexer(src, diags);
  auto toks = lexer.run();
  EXPECT_FALSE(diags.hasErrors()) << diags.dump();
  return toks;
}

std::vector<Tok> kinds(const std::vector<Token>& toks) {
  std::vector<Tok> out;
  for (const auto& t : toks) out.push_back(t.kind);
  return out;
}

TEST(Lexer, SimpleAssignment) {
  auto toks = lex("      X = Y + 1\n");
  ASSERT_GE(toks.size(), 6u);
  EXPECT_EQ(toks[0].kind, Tok::Identifier);
  EXPECT_EQ(toks[0].text, "X");
  EXPECT_EQ(toks[1].kind, Tok::Assign);
  EXPECT_EQ(toks[2].text, "Y");
  EXPECT_EQ(toks[3].kind, Tok::Plus);
  EXPECT_EQ(toks[4].kind, Tok::IntLiteral);
  EXPECT_EQ(toks[4].intValue, 1);
  EXPECT_EQ(toks[5].kind, Tok::Newline);
}

TEST(Lexer, LowercaseIsCanonicalizedUpper) {
  auto toks = lex("      foo = bar\n");
  EXPECT_EQ(toks[0].text, "FOO");
  EXPECT_EQ(toks[2].text, "BAR");
}

TEST(Lexer, LeadingLabel) {
  auto toks = lex("  100 CONTINUE\n");
  EXPECT_EQ(toks[0].kind, Tok::Label);
  EXPECT_EQ(toks[0].intValue, 100);
  EXPECT_EQ(toks[1].text, "CONTINUE");
}

TEST(Lexer, CommentLinesSkipped) {
  auto toks = lex("C this is a comment\n* so is this\n! and this\n      X = 1\n");
  EXPECT_EQ(toks[0].text, "X");
  EXPECT_EQ(toks[0].loc.line, 4);
}

TEST(Lexer, TrailingCommentStripped) {
  auto toks = lex("      X = 1 ! trailing\n");
  // X = 1 NL EOF
  EXPECT_EQ(kinds(toks),
            (std::vector<Tok>{Tok::Identifier, Tok::Assign, Tok::IntLiteral,
                              Tok::Newline, Tok::EndOfFile}));
}

TEST(Lexer, DotOperators) {
  auto toks = lex("      IF (A .GE. B .AND. C .NE. D) GOTO 10\n");
  bool sawGe = false, sawAnd = false, sawNe = false;
  for (const auto& t : toks) {
    if (t.kind == Tok::Ge) sawGe = true;
    if (t.kind == Tok::And) sawAnd = true;
    if (t.kind == Tok::Ne) sawNe = true;
  }
  EXPECT_TRUE(sawGe);
  EXPECT_TRUE(sawAnd);
  EXPECT_TRUE(sawNe);
}

TEST(Lexer, SymbolicRelationalOperators) {
  auto toks = lex("      IF (A >= B) X = 1\n");
  bool sawGe = false;
  for (const auto& t : toks) {
    if (t.kind == Tok::Ge) sawGe = true;
  }
  EXPECT_TRUE(sawGe);
}

TEST(Lexer, RealLiterals) {
  auto toks = lex("      X = 1.5 + 2.E3 + 1.D0 + .25\n");
  std::vector<double> reals;
  for (const auto& t : toks) {
    if (t.kind == Tok::RealLiteral) reals.push_back(t.realValue);
  }
  ASSERT_EQ(reals.size(), 4u);
  EXPECT_DOUBLE_EQ(reals[0], 1.5);
  EXPECT_DOUBLE_EQ(reals[1], 2000.0);
  EXPECT_DOUBLE_EQ(reals[2], 1.0);
  EXPECT_DOUBLE_EQ(reals[3], 0.25);
}

TEST(Lexer, RealLiteralDotBeforeOperatorWord) {
  // "1.EQ." must lex as IntLiteral(1) Eq, not RealLiteral("1.E"...).
  auto toks = lex("      IF (I.EQ.J) X = 1.E2\n");
  bool sawEq = false;
  bool sawReal = false;
  for (const auto& t : toks) {
    if (t.kind == Tok::Eq) sawEq = true;
    if (t.kind == Tok::RealLiteral) {
      sawReal = true;
      EXPECT_DOUBLE_EQ(t.realValue, 100.0);
    }
  }
  EXPECT_TRUE(sawEq);
  EXPECT_TRUE(sawReal);
}

TEST(Lexer, PowerOperator) {
  auto toks = lex("      X = Y**2\n");
  EXPECT_EQ(toks[3].kind, Tok::Power);
}

TEST(Lexer, FixedFormContinuation) {
  auto toks = lex("      X = A +\n     $    B\n");
  // Should be one statement: X = A + B NL EOF
  EXPECT_EQ(kinds(toks),
            (std::vector<Tok>{Tok::Identifier, Tok::Assign, Tok::Identifier,
                              Tok::Plus, Tok::Identifier, Tok::Newline,
                              Tok::EndOfFile}));
}

TEST(Lexer, FreeFormAmpersandContinuation) {
  auto toks = lex("      X = A + &\n      B\n");
  EXPECT_EQ(kinds(toks),
            (std::vector<Tok>{Tok::Identifier, Tok::Assign, Tok::Identifier,
                              Tok::Plus, Tok::Identifier, Tok::Newline,
                              Tok::EndOfFile}));
}

TEST(Lexer, Directives) {
  DiagnosticEngine diags;
  Lexer lexer("C normal comment\nCPED$ ASSERT PERMUTATION (IT)\n      X = 1\n",
              diags);
  auto toks = lexer.run();
  (void)toks;
  ASSERT_EQ(lexer.directives().size(), 1u);
  EXPECT_EQ(lexer.directives()[0].line, 2);
  EXPECT_EQ(lexer.directives()[0].text, "ASSERT PERMUTATION (IT)");
}

TEST(Lexer, BangDirective) {
  DiagnosticEngine diags;
  Lexer lexer("!PED$ assert relation (MCN .GT. N)\n", diags);
  (void)lexer.run();
  ASSERT_EQ(lexer.directives().size(), 1u);
  EXPECT_EQ(lexer.directives()[0].text, "ASSERT RELATION (MCN .GT. N)");
}

TEST(Lexer, StringLiterals) {
  auto toks = lex("      WRITE(6, *) 'it''s fine'\n");
  bool found = false;
  for (const auto& t : toks) {
    if (t.kind == Tok::StringLiteral) {
      found = true;
      EXPECT_EQ(t.text, "it's fine");
    }
  }
  EXPECT_TRUE(found);
}

TEST(Lexer, LocTracksLinesAndColumns) {
  auto toks = lex("      X = 1\n      Y = 2\n");
  EXPECT_EQ(toks[0].loc.line, 1);
  EXPECT_EQ(toks[4].loc.line, 2);  // Y
  EXPECT_EQ(toks[0].loc.column, 7);
}

TEST(Lexer, ErrorOnBadCharacter) {
  DiagnosticEngine diags;
  Lexer lexer("      X = #\n", diags);
  (void)lexer.run();
  EXPECT_TRUE(diags.hasErrors());
}

TEST(Lexer, UnterminatedString) {
  DiagnosticEngine diags;
  Lexer lexer("      WRITE(6, *) 'oops\n", diags);
  (void)lexer.run();
  EXPECT_TRUE(diags.hasErrors());
}

}  // namespace
}  // namespace ps::fortran
