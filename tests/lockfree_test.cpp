#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "dependence/testsuite.h"
#include "support/ebr.h"
#include "support/lockfree.h"
#include "support/taskpool.h"

namespace ps::support {
namespace {

// ---------------------------------------------------------------------------
// ChaseLevDeque
// ---------------------------------------------------------------------------

// Items are 1-based indices encoded as pointers so nullptr stays "empty".
void* enc(std::size_t i) { return reinterpret_cast<void*>(i + 1); }
std::size_t dec(void* p) { return reinterpret_cast<std::uintptr_t>(p) - 1; }

TEST(ChaseLevDeque, OwnerOnlyFifoLifoSemantics) {
  ChaseLevDeque d;
  EXPECT_EQ(d.popBottom(), nullptr);
  for (std::size_t i = 0; i < 100; ++i) d.pushBottom(enc(i));
  // Owner pops LIFO from the bottom.
  for (std::size_t i = 100; i-- > 0;) {
    void* p = d.popBottom();
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(dec(p), i);
  }
  EXPECT_EQ(d.popBottom(), nullptr);
}

TEST(ChaseLevDeque, StealsComeFromTheTop) {
  ChaseLevDeque d;
  for (std::size_t i = 0; i < 10; ++i) d.pushBottom(enc(i));
  void* p = nullptr;
  ASSERT_EQ(d.steal(&p), ChaseLevDeque::Steal::Got);
  EXPECT_EQ(dec(p), 0u);  // oldest item
  ASSERT_NE((p = d.popBottom()), nullptr);
  EXPECT_EQ(dec(p), 9u);  // newest item
}

// Every pushed item is consumed exactly once, split between the owner
// (popBottom) and a gang of thieves hammering steal() concurrently.
TEST(ChaseLevDeque, OwnerVsThievesEachItemConsumedOnce) {
  constexpr std::size_t kItems = 200000;
  constexpr int kThieves = 4;
  ChaseLevDeque d;
  std::vector<std::atomic<int>> seen(kItems);
  for (auto& s : seen) s.store(0, std::memory_order_relaxed);
  std::atomic<bool> done{false};
  std::atomic<std::size_t> consumed{0};

  std::vector<std::thread> thieves;
  thieves.reserve(kThieves);
  for (int t = 0; t < kThieves; ++t) {
    thieves.emplace_back([&] {
      while (!done.load(std::memory_order_acquire) ||
             consumed.load(std::memory_order_acquire) < kItems) {
        void* p = nullptr;
        if (d.steal(&p) == ChaseLevDeque::Steal::Got) {
          seen[dec(p)].fetch_add(1, std::memory_order_relaxed);
          consumed.fetch_add(1, std::memory_order_acq_rel);
        }
        if (consumed.load(std::memory_order_acquire) >= kItems) break;
      }
    });
  }

  // Owner: bursts of pushes interleaved with pops, so both ends are active.
  std::size_t next = 0;
  while (next < kItems) {
    const std::size_t burst = std::min<std::size_t>(64, kItems - next);
    for (std::size_t i = 0; i < burst; ++i) d.pushBottom(enc(next++));
    for (int i = 0; i < 16; ++i) {
      void* p = d.popBottom();
      if (p == nullptr) break;
      seen[dec(p)].fetch_add(1, std::memory_order_relaxed);
      consumed.fetch_add(1, std::memory_order_acq_rel);
    }
  }
  done.store(true, std::memory_order_release);
  // Owner drains whatever the thieves have not taken yet.
  while (consumed.load(std::memory_order_acquire) < kItems) {
    void* p = d.popBottom();
    if (p != nullptr) {
      seen[dec(p)].fetch_add(1, std::memory_order_relaxed);
      consumed.fetch_add(1, std::memory_order_acq_rel);
    }
  }
  for (auto& th : thieves) th.join();

  for (std::size_t i = 0; i < kItems; ++i) {
    ASSERT_EQ(seen[i].load(std::memory_order_relaxed), 1)
        << "item " << i << " consumed " << seen[i].load() << " times";
  }
}

// Start with a tiny buffer so pushes force repeated grow() while thieves
// hold possibly-stale buffer pointers mid-steal.
TEST(ChaseLevDeque, ResizeUnderConcurrentSteal) {
  constexpr std::size_t kItems = 100000;
  constexpr int kThieves = 3;
  ChaseLevDeque d(2);
  ASSERT_EQ(d.capacity(), 2u);
  std::vector<std::atomic<int>> seen(kItems);
  for (auto& s : seen) s.store(0, std::memory_order_relaxed);
  std::atomic<std::size_t> consumed{0};
  std::atomic<bool> done{false};

  std::vector<std::thread> thieves;
  for (int t = 0; t < kThieves; ++t) {
    thieves.emplace_back([&] {
      while (consumed.load(std::memory_order_acquire) < kItems) {
        void* p = nullptr;
        if (d.steal(&p) == ChaseLevDeque::Steal::Got) {
          seen[dec(p)].fetch_add(1, std::memory_order_relaxed);
          consumed.fetch_add(1, std::memory_order_acq_rel);
        } else if (done.load(std::memory_order_acquire) &&
                   consumed.load(std::memory_order_acquire) >= kItems) {
          break;
        }
      }
    });
  }

  // Push everything without owner pops: the deque depth crosses every
  // power-of-two boundary up to kItems, exercising grow() under live steals.
  for (std::size_t i = 0; i < kItems; ++i) d.pushBottom(enc(i));
  done.store(true, std::memory_order_release);
  while (consumed.load(std::memory_order_acquire) < kItems) {
    void* p = d.popBottom();
    if (p != nullptr) {
      seen[dec(p)].fetch_add(1, std::memory_order_relaxed);
      consumed.fetch_add(1, std::memory_order_acq_rel);
    }
  }
  for (auto& th : thieves) th.join();

  // Depth = pushes minus concurrent steals, so the final capacity depends
  // on thief throughput; what matters is that grow() fired repeatedly
  // while thieves were live (from 2 up through many doublings).
  EXPECT_GE(d.capacity(), 64u);
  for (std::size_t i = 0; i < kItems; ++i) {
    ASSERT_EQ(seen[i].load(std::memory_order_relaxed), 1) << "item " << i;
  }
}

// ---------------------------------------------------------------------------
// MpmcChannel
// ---------------------------------------------------------------------------

TEST(MpmcChannel, BoundedFifoSingleThread) {
  MpmcChannel ch(4);
  EXPECT_EQ(ch.capacity(), 4u);
  void* p = nullptr;
  EXPECT_FALSE(ch.tryPop(&p));
  for (std::size_t i = 0; i < 4; ++i) EXPECT_TRUE(ch.tryPush(enc(i)));
  EXPECT_FALSE(ch.tryPush(enc(99)));  // full
  for (std::size_t i = 0; i < 4; ++i) {
    ASSERT_TRUE(ch.tryPop(&p));
    EXPECT_EQ(dec(p), i);  // FIFO
  }
  EXPECT_FALSE(ch.tryPop(&p));
}

TEST(MpmcChannel, ManyProducersManyConsumersNoLossNoDup) {
  constexpr int kProducers = 4;
  constexpr int kConsumers = 4;
  constexpr std::size_t kPerProducer = 50000;
  constexpr std::size_t kItems = kProducers * kPerProducer;
  MpmcChannel ch(256);
  std::vector<std::atomic<int>> seen(kItems);
  for (auto& s : seen) s.store(0, std::memory_order_relaxed);
  std::atomic<std::size_t> popped{0};

  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&, p] {
      for (std::size_t i = 0; i < kPerProducer; ++i) {
        const std::size_t item = p * kPerProducer + i;
        while (!ch.tryPush(enc(item))) std::this_thread::yield();
      }
    });
  }
  for (int c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&] {
      void* p = nullptr;
      while (popped.load(std::memory_order_acquire) < kItems) {
        if (ch.tryPop(&p)) {
          seen[dec(p)].fetch_add(1, std::memory_order_relaxed);
          popped.fetch_add(1, std::memory_order_acq_rel);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  for (std::size_t i = 0; i < kItems; ++i) {
    ASSERT_EQ(seen[i].load(std::memory_order_relaxed), 1) << "item " << i;
  }
}

// ---------------------------------------------------------------------------
// Epoch-based reclamation
// ---------------------------------------------------------------------------

TEST(EpochDomain, PinnedReaderBlocksReclamation) {
  EpochDomain domain;
  static std::atomic<int> freedFlags;
  freedFlags.store(0, std::memory_order_relaxed);
  auto* node = new int(42);
  {
    EpochGuard guard(domain);
    domain.retire(node, [](void* p) {
      freedFlags.fetch_add(1, std::memory_order_relaxed);
      delete static_cast<int*>(p);
    });
    // While we are pinned the epoch cannot advance twice past our pin, so
    // the node must survive any reclamation attempt.
    domain.synchronize();
    EXPECT_EQ(domain.freedCount(), 0u);
    EXPECT_EQ(freedFlags.load(std::memory_order_relaxed), 0);
    EXPECT_EQ(*node, 42);  // still alive and intact
  }
  domain.synchronize();  // unpinned: grace period can now lapse
  EXPECT_EQ(domain.freedCount(), 1u);
  EXPECT_EQ(freedFlags.load(std::memory_order_relaxed), 1);
}

// Readers chase a shared pointer that a writer keeps swapping and retiring.
// Retired nodes are poisoned (not deallocated) by the deleter, so a reader
// observing the poison value through its epoch pin would be a proven
// use-after-retire — without ever touching freed memory.
TEST(EpochDomain, SwapAndRetireStormNoUseAfterRetire) {
  struct Node {
    std::atomic<std::uint64_t> value{0};
  };
  constexpr std::uint64_t kPoison = ~std::uint64_t{0};
  constexpr int kReaders = 4;
  constexpr int kSwaps = 20000;

  EpochDomain domain;
  std::vector<std::unique_ptr<Node>> arena;  // owns every node ever published
  arena.reserve(kSwaps + 1);
  arena.push_back(std::make_unique<Node>());
  arena.back()->value.store(1, std::memory_order_relaxed);
  std::atomic<Node*> shared{arena.back().get()};
  std::atomic<bool> stop{false};
  std::atomic<long long> poisonedReads{0};

  std::vector<std::thread> readers;
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        EpochGuard guard(domain);
        Node* n = shared.load(std::memory_order_acquire);
        if (n->value.load(std::memory_order_acquire) == kPoison) {
          poisonedReads.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }

  for (int i = 0; i < kSwaps; ++i) {
    arena.push_back(std::make_unique<Node>());
    arena.back()->value.store(static_cast<std::uint64_t>(i) + 2,
                              std::memory_order_relaxed);
    Node* old = shared.exchange(arena.back().get(), std::memory_order_acq_rel);
    domain.retire(old, [](void* p) {
      static_cast<Node*>(p)->value.store(kPoison, std::memory_order_release);
    });
  }
  stop.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();

  EXPECT_EQ(poisonedReads.load(std::memory_order_relaxed), 0)
      << "a reader saw a node after its grace period supposedly lapsed";
  domain.synchronize();
  // Quiescent: everything retired must have drained through limbo.
  EXPECT_EQ(domain.retiredCount(), static_cast<std::uint64_t>(kSwaps));
  EXPECT_EQ(domain.freedCount(), domain.retiredCount());
}

// ---------------------------------------------------------------------------
// DepMemo under invalidation storms (both backends)
// ---------------------------------------------------------------------------

dep::LevelResult stamped(std::uint64_t gen) {
  dep::LevelResult r;
  r.answer = dep::DepAnswer::NoDependence;
  r.distance = static_cast<long long>(gen);
  return r;
}

class DepMemoBackend : public ::testing::TestWithParam<bool> {};

// invalidateView storms while readers/writers run the capture-once protocol:
// each round-trip captures (floor, gen) exactly as DependenceTester does,
// inserts stamped entries, and checks every hit's stamp lies in its window.
// A stale hit (stamp outside [floor, gen]) is the bug the epoch windows
// exist to prevent; a use-after-retire would crash/TSan on the lock-free
// backend's retired boxes and arrays.
TEST_P(DepMemoBackend, InvalidateViewStormMidLookupZeroStaleHits) {
  dep::DepMemo memo(GetParam());
  ASSERT_EQ(memo.lockfree(), GetParam());
  constexpr int kWorkers = 6;
  constexpr int kKeys = 64;
  constexpr int kIters = 3000;
  std::vector<dep::DepMemo::ViewId> views;
  views.push_back(0);
  for (int i = 1; i < kWorkers; ++i) views.push_back(memo.createView());
  std::atomic<long long> staleHits{0};
  std::atomic<long long> hits{0};
  std::atomic<bool> stop{false};

  std::vector<std::thread> threads;
  for (int w = 0; w < kWorkers; ++w) {
    threads.emplace_back([&, w] {
      const dep::DepMemo::ViewId view = views[w];
      for (int i = 0; i < kIters; ++i) {
        // Capture once, like DependenceTester's constructor.
        const std::uint64_t floor = memo.floorOf(view);
        const std::uint64_t gen = memo.generation();
        const dep::MemoKey key("k" + std::to_string((w * kIters + i) % kKeys));
        if (std::optional<dep::LevelResult> hit = memo.lookup(key, floor, gen)) {
          hits.fetch_add(1, std::memory_order_relaxed);
          const auto stamp = static_cast<std::uint64_t>(*hit->distance);
          if (stamp < floor || stamp > gen) {
            staleHits.fetch_add(1, std::memory_order_relaxed);
          }
        }
        memo.insert(key, stamped(gen), gen);
        if (i % 64 == 0) memo.invalidateView(view);
      }
    });
  }
  // A dedicated invalidator keeps epochs moving while lookups are in flight.
  threads.emplace_back([&] {
    int v = 0;
    while (!stop.load(std::memory_order_acquire)) {
      memo.invalidateView(views[v++ % views.size()]);
      std::this_thread::yield();
    }
  });
  for (int w = 0; w < kWorkers; ++w) threads[w].join();
  stop.store(true, std::memory_order_release);
  threads.back().join();

  EXPECT_EQ(staleHits.load(std::memory_order_relaxed), 0);
  EXPECT_GT(hits.load(std::memory_order_relaxed), 0);
  EXPECT_LE(memo.size(), static_cast<std::size_t>(kKeys));
  if (GetParam()) {
    // Same-key overwrites retired superseded boxes; growth retired arrays.
    // At quiescence the global domain must be able to drain them all.
    EpochDomain::global().synchronize();
    EXPECT_EQ(EpochDomain::global().freedCount(),
              EpochDomain::global().retiredCount());
  }
}

TEST_P(DepMemoBackend, GrowthPreservesEveryDistinctKey) {
  dep::DepMemo memo(GetParam());
  constexpr int kThreads = 8;
  constexpr int kKeysPerThread = 512;  // forces several doublings per shard
  const std::uint64_t gen = memo.generation();
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kKeysPerThread; ++i) {
        memo.insert(dep::MemoKey("g" + std::to_string(t) + "_" +
                                 std::to_string(i)),
                    stamped(gen), gen);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(memo.size(),
            static_cast<std::size_t>(kThreads) * kKeysPerThread);
  for (int t = 0; t < kThreads; ++t) {
    for (int i = 0; i < kKeysPerThread; ++i) {
      const dep::MemoKey key("g" + std::to_string(t) + "_" +
                             std::to_string(i));
      ASSERT_TRUE(memo.lookup(key, gen).has_value())
          << key.text << " lost during concurrent growth";
    }
  }
  EXPECT_EQ(memo.exportEntries().size(), memo.size());
}

INSTANTIATE_TEST_SUITE_P(Backends, DepMemoBackend, ::testing::Bool(),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "lockfree" : "mutex";
                         });

// ---------------------------------------------------------------------------
// TaskPool on both substrates
// ---------------------------------------------------------------------------

class TaskPoolBackend : public ::testing::TestWithParam<bool> {};

TEST_P(TaskPoolBackend, ExternalSubmissionStormRunsEveryTask) {
  TaskPool pool(4, GetParam());
  ASSERT_EQ(pool.lockfree(), GetParam());
  constexpr int kSubmitters = 4;
  constexpr int kTasksEach = 2000;
  std::atomic<long long> ran{0};
  WaitGroup wg;
  std::vector<std::thread> submitters;
  for (int s = 0; s < kSubmitters; ++s) {
    submitters.emplace_back([&] {
      for (int i = 0; i < kTasksEach; ++i) {
        pool.submit(wg, [&ran] {
          ran.fetch_add(1, std::memory_order_relaxed);
        });
      }
    });
  }
  for (auto& t : submitters) t.join();
  pool.wait(wg);
  EXPECT_EQ(ran.load(std::memory_order_relaxed),
            static_cast<long long>(kSubmitters) * kTasksEach);
  EXPECT_EQ(pool.tasksExecuted(),
            static_cast<std::uint64_t>(kSubmitters) * kTasksEach);
}

TEST_P(TaskPoolBackend, NestedFanOutFromWorkerTasks) {
  TaskPool pool(4, GetParam());
  constexpr int kOuter = 64;
  constexpr int kInner = 32;
  std::atomic<long long> ran{0};
  std::vector<std::function<void()>> outer;
  outer.reserve(kOuter);
  for (int i = 0; i < kOuter; ++i) {
    outer.emplace_back([&pool, &ran] {
      // Worker-side submits land in the worker's own deque (lock-free) and
      // must be waitable from inside a task without deadlock.
      WaitGroup inner;
      for (int j = 0; j < kInner; ++j) {
        pool.submit(inner, [&ran] {
          ran.fetch_add(1, std::memory_order_relaxed);
        });
      }
      pool.wait(inner);
    });
  }
  pool.runAll(std::move(outer));
  EXPECT_EQ(ran.load(std::memory_order_relaxed),
            static_cast<long long>(kOuter) * kInner);
}

TEST_P(TaskPoolBackend, IdleStatsExposeStealTelemetry) {
  TaskPool pool(4, GetParam());
  std::atomic<long long> ran{0};
  std::vector<std::function<void()>> thunks;
  for (int i = 0; i < 256; ++i) {
    thunks.emplace_back([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.runAll(std::move(thunks));
  const std::vector<TaskPool::IdleStats> rows = pool.idleStats();
  ASSERT_EQ(rows.size(), static_cast<std::size_t>(pool.threadCount()) + 1);
  TaskPool::IdleStats total;
  for (const auto& r : rows) total.accumulate(r);
  // Every fail is a subset of attempts, and aborts are a subset of fails.
  EXPECT_LE(total.stealFails, total.stealAttempts);
  EXPECT_LE(pool.stealAborts(), total.stealAttempts);
  EXPECT_EQ(ran.load(std::memory_order_relaxed), 256);
}

INSTANTIATE_TEST_SUITE_P(Substrates, TaskPoolBackend, ::testing::Bool(),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "lockfree" : "mutex";
                         });

// The determinism anchor: a 1-thread pool ignores the substrate entirely.
TEST(TaskPoolLockfree, SingleThreadPoolIsAlwaysSequential) {
  TaskPool pool(1, true);
  EXPECT_FALSE(pool.lockfree());
  std::vector<int> order;
  std::vector<std::function<void()>> thunks;
  for (int i = 0; i < 16; ++i) {
    thunks.emplace_back([&order, i] { order.push_back(i); });
  }
  pool.runAll(std::move(thunks));
  ASSERT_EQ(order.size(), 16u);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(order[i], i);
}

}  // namespace
}  // namespace ps::support
