#include "ir/model.h"

#include <gtest/gtest.h>

#include "fortran/parser.h"
#include "ir/refs.h"
#include "support/diagnostics.h"

namespace ps::ir {
namespace {

using fortran::Program;
using fortran::StmtKind;

std::unique_ptr<Program> parse(std::string_view src) {
  ps::DiagnosticEngine diags;
  auto prog = fortran::parseSource(src, diags);
  EXPECT_FALSE(diags.hasErrors()) << diags.dump();
  return prog;
}

const char* kNest =
    "      SUBROUTINE S(A, B, N, M)\n"
    "      REAL A(N, M), B(N)\n"
    "      DO 10 J = 1, M\n"
    "        DO 20 I = 1, N\n"
    "          A(I, J) = B(I)\n"
    "   20   CONTINUE\n"
    "        B(J) = 0.0\n"
    "   10 CONTINUE\n"
    "      DO K = 1, N\n"
    "        B(K) = B(K) + 1.0\n"
    "      ENDDO\n"
    "      END\n";

TEST(ProcedureModel, LoopTreeShape) {
  auto prog = parse(kNest);
  ProcedureModel model(*prog->units[0]);
  ASSERT_EQ(model.loops().size(), 3u);
  auto top = model.topLevelLoops();
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0]->inductionVar(), "J");
  EXPECT_EQ(top[0]->level, 1);
  ASSERT_EQ(top[0]->children.size(), 1u);
  EXPECT_EQ(top[0]->children[0]->inductionVar(), "I");
  EXPECT_EQ(top[0]->children[0]->level, 2);
  EXPECT_EQ(top[1]->inductionVar(), "K");
  EXPECT_TRUE(top[1]->children.empty());
}

TEST(ProcedureModel, BodyStmtsIncludeNested) {
  auto prog = parse(kNest);
  ProcedureModel model(*prog->units[0]);
  auto top = model.topLevelLoops();
  // Outer J loop body: inner DO, A(I,J)=B(I), 20 CONTINUE, B(J)=0, 10 CONT.
  EXPECT_EQ(top[0]->bodyStmts.size(), 5u);
  // Inner I loop body: assignment + CONTINUE.
  EXPECT_EQ(top[0]->children[0]->bodyStmts.size(), 2u);
}

TEST(ProcedureModel, EnclosingLoop) {
  auto prog = parse(kNest);
  ProcedureModel model(*prog->units[0]);
  auto top = model.topLevelLoops();
  const fortran::Stmt* assign = top[0]->children[0]->bodyStmts[0];
  ASSERT_EQ(assign->kind, StmtKind::Assign);
  Loop* l = model.enclosingLoop(assign->id);
  ASSERT_NE(l, nullptr);
  EXPECT_EQ(l->inductionVar(), "I");
  // The DO I statement itself is enclosed by the J loop.
  Loop* outer = model.enclosingLoop(top[0]->children[0]->stmt->id);
  ASSERT_NE(outer, nullptr);
  EXPECT_EQ(outer->inductionVar(), "J");
}

TEST(ProcedureModel, NestPath) {
  auto prog = parse(kNest);
  ProcedureModel model(*prog->units[0]);
  auto top = model.topLevelLoops();
  auto path = top[0]->children[0]->nestPath();
  ASSERT_EQ(path.size(), 2u);
  EXPECT_EQ(path[0]->inductionVar(), "J");
  EXPECT_EQ(path[1]->inductionVar(), "I");
}

TEST(ProcedureModel, LabelTargets) {
  auto prog = parse(kNest);
  ProcedureModel model(*prog->units[0]);
  ASSERT_NE(model.labelTarget(20), nullptr);
  EXPECT_EQ(model.labelTarget(20)->kind, StmtKind::Continue);
  EXPECT_EQ(model.labelTarget(999), nullptr);
}

TEST(ProcedureModel, ContainerOf) {
  auto prog = parse(kNest);
  ProcedureModel model(*prog->units[0]);
  auto top = model.topLevelLoops();
  std::size_t idx = 99;
  auto* container = model.containerOf(top[1]->stmt->id, &idx);
  ASSERT_NE(container, nullptr);
  EXPECT_EQ(idx, 1u);  // second top-level statement
  EXPECT_EQ(container, &prog->units[0]->body);
}

TEST(ProcedureModel, IfArmsIndexed) {
  auto prog = parse(
      "      SUBROUTINE S(X)\n"
      "      IF (X .GT. 0.0) THEN\n"
      "        X = 1.0\n"
      "      ELSE\n"
      "        X = 2.0\n"
      "      ENDIF\n"
      "      END\n");
  ProcedureModel model(*prog->units[0]);
  EXPECT_EQ(model.allStmts().size(), 3u);  // IF + two assignments
  const fortran::Stmt* ifStmt = prog->units[0]->body[0].get();
  const fortran::Stmt* thenStmt = ifStmt->arms[0].body[0].get();
  EXPECT_EQ(model.parentStmt(thenStmt->id), ifStmt);
}

TEST(Refs, AssignmentReadsAndWrites) {
  auto prog = parse(
      "      SUBROUTINE S(A, B, I)\n"
      "      REAL A(10), B(10)\n"
      "      A(I + 1) = B(I)*2.0\n"
      "      END\n");
  auto refs = collectRefs(*prog->units[0]->body[0]);
  // Writes: A. Reads: I (subscript), B, I.
  int writes = 0, reads = 0;
  for (const auto& r : refs) {
    if (r.kind == RefKind::Write) {
      ++writes;
      EXPECT_EQ(r.name, "A");
      EXPECT_TRUE(r.isArrayRef());
    }
    if (r.kind == RefKind::Read) ++reads;
  }
  EXPECT_EQ(writes, 1);
  EXPECT_EQ(reads, 3);
}

TEST(Refs, DoStatementRefs) {
  auto prog = parse(
      "      SUBROUTINE S(A, N)\n"
      "      REAL A(N)\n"
      "      DO I = 2, N - 1\n"
      "        A(I) = 0.0\n"
      "      ENDDO\n"
      "      END\n");
  auto refs = collectRefs(*prog->units[0]->body[0]);
  bool sawDoVar = false, sawN = false;
  for (const auto& r : refs) {
    if (r.kind == RefKind::DoVarDef) {
      sawDoVar = true;
      EXPECT_EQ(r.name, "I");
    }
    if (r.name == "N" && r.kind == RefKind::Read) sawN = true;
  }
  EXPECT_TRUE(sawDoVar);
  EXPECT_TRUE(sawN);
}

TEST(Refs, CallActuals) {
  auto prog = parse(
      "      SUBROUTINE S(A, N)\n"
      "      REAL A(N)\n"
      "      CALL F(A, N, A(1), N + 1)\n"
      "      END\n");
  auto refs = collectRefs(*prog->units[0]->body[0]);
  int actuals = 0;
  for (const auto& r : refs) {
    if (r.kind == RefKind::CallActual) ++actuals;
  }
  // A, N, A(1) pass variables; N+1 is an expression (reads only).
  EXPECT_EQ(actuals, 3);
}

TEST(Refs, ReadStatementWritesItems) {
  auto prog = parse(
      "      SUBROUTINE S(A)\n"
      "      REAL A(10)\n"
      "      READ *, N, A(2)\n"
      "      END\n");
  auto refs = collectRefs(*prog->units[0]->body[0]);
  int writes = 0;
  for (const auto& r : refs) {
    if (r.kind == RefKind::Write) ++writes;
  }
  EXPECT_EQ(writes, 2);
}

TEST(Refs, FuncCallArgsAreReads) {
  auto prog = parse(
      "      SUBROUTINE S(X, Y)\n"
      "      X = SQRT(Y) + USERFN(X)\n"
      "      END\n");
  auto refs = collectRefs(*prog->units[0]->body[0]);
  int reads = 0;
  for (const auto& r : refs) {
    if (r.kind == RefKind::Read) ++reads;
  }
  EXPECT_EQ(reads, 2);  // Y and X on rhs
}

TEST(Refs, CalledFunctions) {
  auto prog = parse(
      "      SUBROUTINE S(X, Y)\n"
      "      X = SQRT(Y) + USERFN(X)\n"
      "      CALL HELPER(X)\n"
      "      END\n");
  auto f0 = calledFunctions(*prog->units[0]->body[0]);
  ASSERT_EQ(f0.size(), 1u);
  EXPECT_EQ(f0[0], "USERFN");  // SQRT is intrinsic
  auto f1 = calledFunctions(*prog->units[0]->body[1]);
  ASSERT_EQ(f1.size(), 1u);
  EXPECT_EQ(f1[0], "HELPER");
}

TEST(Refs, IntrinsicTable) {
  EXPECT_TRUE(isIntrinsic("SQRT"));
  EXPECT_TRUE(isIntrinsic("MAX"));
  EXPECT_TRUE(isIntrinsic("MOD"));
  EXPECT_FALSE(isIntrinsic("GLOOP"));
}

}  // namespace
}  // namespace ps::ir
