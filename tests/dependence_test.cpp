#include <gtest/gtest.h>

#include <set>
#include <tuple>

#include "dependence/fm.h"
#include "dependence/graph.h"
#include "fortran/parser.h"
#include "fortran/pretty.h"
#include "support/diagnostics.h"

namespace ps::dep {
namespace {

using dataflow::LinearExpr;
using fortran::Program;
using fortran::Stmt;
using fortran::StmtKind;

struct Built {
  std::unique_ptr<Program> prog;
  std::unique_ptr<ir::ProcedureModel> model;
  DependenceGraph graph;
};

Built buildGraph(std::string_view src, const AnalysisContext& ctx = {}) {
  ps::DiagnosticEngine diags;
  Built b;
  b.prog = fortran::parseSource(src, diags);
  EXPECT_FALSE(diags.hasErrors()) << diags.dump();
  b.model = std::make_unique<ir::ProcedureModel>(*b.prog->units[0]);
  b.graph = DependenceGraph::build(*b.model, ctx);
  return b;
}

int countDeps(const DependenceGraph& g, DepType type, bool carriedOnly) {
  int n = 0;
  for (const auto& d : g.all()) {
    if (d.type == type && (!carriedOnly || d.loopCarried())) ++n;
  }
  return n;
}

// ---------------------------------------------------------------------------
// Fourier–Motzkin engine
// ---------------------------------------------------------------------------

LinearExpr lin(std::map<std::string, long long> coef, long long c) {
  LinearExpr e;
  for (auto& [v, k] : coef) {
    if (k != 0) e.coef[v] = k;
  }
  e.constant = c;
  return e;
}

TEST(FM, TrivialContradiction) {
  // -1 >= 0 is infeasible.
  FourierMotzkin fm({Constraint::ge0(lin({}, -1))});
  EXPECT_TRUE(fm.infeasible());
}

TEST(FM, SimpleFeasible) {
  // x >= 0, 10 - x >= 0.
  FourierMotzkin fm({Constraint::ge0(lin({{"x", 1}}, 0)),
                     Constraint::ge0(lin({{"x", -1}}, 10))});
  EXPECT_FALSE(fm.infeasible());
}

TEST(FM, BoundsConflict) {
  // x >= 5 and x <= 3.
  FourierMotzkin fm({Constraint::ge0(lin({{"x", 1}}, -5)),
                     Constraint::ge0(lin({{"x", -1}}, 3))});
  EXPECT_TRUE(fm.infeasible());
}

TEST(FM, EqualityGcdTest) {
  // 2x + 4y == 3 has no integer solution (gcd 2 does not divide 3).
  FourierMotzkin fm({Constraint::eq0(lin({{"x", 2}, {"y", 4}}, -3))});
  EXPECT_TRUE(fm.infeasible());
}

TEST(FM, EqualityGcdPasses) {
  FourierMotzkin fm({Constraint::eq0(lin({{"x", 2}, {"y", 4}}, -6))});
  EXPECT_FALSE(fm.infeasible());
}

TEST(FM, StrictInequalityInteger) {
  // x > 0 and x < 1 has no integer solution (x >= 1 and x <= 0).
  FourierMotzkin fm({Constraint::gt0(lin({{"x", 1}}, 0)),
                     Constraint::gt0(lin({{"x", -1}}, 1))});
  EXPECT_TRUE(fm.infeasible());
}

TEST(FM, TransitiveChain) {
  // x <= y, y <= z, z <= x - 1: infeasible.
  FourierMotzkin fm({
      Constraint::ge0(lin({{"y", 1}, {"x", -1}}, 0)),
      Constraint::ge0(lin({{"z", 1}, {"y", -1}}, 0)),
      Constraint::ge0(lin({{"x", 1}, {"z", -1}}, -1)),
  });
  EXPECT_TRUE(fm.infeasible());
}

TEST(FM, SymbolicCase) {
  // The pueblo3d shape: d = MCN + delta, delta in [LO-HI, HI-LO],
  // MCN - (HI - LO) >= 1, d == 0  =>  infeasible.
  FourierMotzkin fm({
      Constraint::eq0(lin({{"MCN", 1}, {"delta", 1}}, 0)),
      Constraint::ge0(lin({{"delta", 1}, {"HI", 1}, {"LO", -1}}, 0)),
      Constraint::ge0(lin({{"delta", -1}, {"HI", 1}, {"LO", -1}}, 0)),
      Constraint::gt0(lin({{"MCN", 1}, {"HI", -1}, {"LO", 1}}, 0)),
  });
  EXPECT_TRUE(fm.infeasible());
}

// ---------------------------------------------------------------------------
// Graph construction: basic loops
// ---------------------------------------------------------------------------

TEST(Graph, VectorizableLoopHasNoCarriedDeps) {
  auto b = buildGraph(
      "      SUBROUTINE S(A, B, N)\n"
      "      REAL A(N), B(N)\n"
      "      DO I = 1, N\n"
      "        A(I) = B(I) + 1.0\n"
      "      ENDDO\n"
      "      END\n");
  auto* loop = b.model->topLevelLoops()[0];
  EXPECT_TRUE(b.graph.parallelizable(*loop));
}

TEST(Graph, RecurrenceHasCarriedTrueDep) {
  auto b = buildGraph(
      "      SUBROUTINE S(A, N)\n"
      "      REAL A(N)\n"
      "      DO I = 2, N\n"
      "        A(I) = A(I - 1) + 1.0\n"
      "      ENDDO\n"
      "      END\n");
  auto* loop = b.model->topLevelLoops()[0];
  EXPECT_FALSE(b.graph.parallelizable(*loop));
  bool foundTrue = false;
  for (const auto* d : b.graph.parallelismInhibitors(*loop)) {
    if (d->type == DepType::True) {
      foundTrue = true;
      EXPECT_EQ(d->mark, DepMark::Proven);  // strong SIV, exact distance
      ASSERT_EQ(d->vector.dists.size(), 1u);
      ASSERT_TRUE(d->vector.dists[0].has_value());
      EXPECT_EQ(*d->vector.dists[0], 1);
    }
  }
  EXPECT_TRUE(foundTrue);
}

TEST(Graph, DistanceTwoRecurrence) {
  auto b = buildGraph(
      "      SUBROUTINE S(A, N)\n"
      "      REAL A(N)\n"
      "      DO I = 3, N\n"
      "        A(I) = A(I - 2)\n"
      "      ENDDO\n"
      "      END\n");
  auto* loop = b.model->topLevelLoops()[0];
  auto inhibitors = b.graph.parallelismInhibitors(*loop);
  ASSERT_FALSE(inhibitors.empty());
  EXPECT_EQ(*inhibitors[0]->vector.dists[0], 2);
}

TEST(Graph, DisprovenByBounds) {
  // A(I) and A(I + 100) with N <= 100: distance 100 exceeds trip count.
  auto b = buildGraph(
      "      SUBROUTINE S(A)\n"
      "      REAL A(200)\n"
      "      DO I = 1, 50\n"
      "        A(I) = A(I + 100)\n"
      "      ENDDO\n"
      "      END\n");
  auto* loop = b.model->topLevelLoops()[0];
  EXPECT_TRUE(b.graph.parallelizable(*loop));
}

TEST(Graph, AntiDependenceDetected) {
  auto b = buildGraph(
      "      SUBROUTINE S(A, N)\n"
      "      REAL A(N)\n"
      "      DO I = 1, N - 1\n"
      "        A(I) = A(I + 1)\n"
      "      ENDDO\n"
      "      END\n");
  auto* loop = b.model->topLevelLoops()[0];
  EXPECT_FALSE(b.graph.parallelizable(*loop));
  EXPECT_GE(countDeps(b.graph, DepType::Anti, true), 1);
  EXPECT_EQ(countDeps(b.graph, DepType::True, true), 0);
}

TEST(Graph, OutputDependenceOnInvariantSubscript) {
  auto b = buildGraph(
      "      SUBROUTINE S(A, N, K)\n"
      "      REAL A(N)\n"
      "      DO I = 1, N\n"
      "        A(K) = FLOAT(I)\n"
      "      ENDDO\n"
      "      END\n");
  auto* loop = b.model->topLevelLoops()[0];
  EXPECT_FALSE(b.graph.parallelizable(*loop));
  EXPECT_GE(countDeps(b.graph, DepType::Output, true), 1);
}

TEST(Graph, LoopIndependentFlowDep) {
  auto b = buildGraph(
      "      SUBROUTINE S(A, B, N)\n"
      "      REAL A(N), B(N)\n"
      "      DO I = 1, N\n"
      "        A(I) = B(I)\n"
      "        B(I) = A(I)*2.0\n"
      "      ENDDO\n"
      "      END\n");
  auto* loop = b.model->topLevelLoops()[0];
  EXPECT_TRUE(b.graph.parallelizable(*loop));
  bool foundIndep = false;
  for (const auto* d : b.graph.forLoop(*loop)) {
    if (d->type == DepType::True && !d->loopCarried() &&
        d->variable == "A") {
      foundIndep = true;
    }
  }
  EXPECT_TRUE(foundIndep);
}

TEST(Graph, TwoDimensionalInterchangeCandidate) {
  // Carried dependence on the outer (J) loop only.
  auto b = buildGraph(
      "      SUBROUTINE S(A, N, M)\n"
      "      REAL A(N, M)\n"
      "      DO J = 2, M\n"
      "        DO I = 1, N\n"
      "          A(I, J) = A(I, J - 1)\n"
      "        ENDDO\n"
      "      ENDDO\n"
      "      END\n");
  auto* outer = b.model->topLevelLoops()[0];
  auto* inner = outer->children[0];
  EXPECT_FALSE(b.graph.parallelizable(*outer));
  EXPECT_TRUE(b.graph.parallelizable(*inner));
}

TEST(Graph, SymbolicButEqualSubscriptsCancel) {
  // A(I + K) = A(I + K) + 1: K unknown but identical on both sides.
  auto b = buildGraph(
      "      SUBROUTINE S(A, N, K)\n"
      "      REAL A(2*N)\n"
      "      DO I = 1, N\n"
      "        A(I + K) = A(I + K) + 1.0\n"
      "      ENDDO\n"
      "      END\n");
  auto* loop = b.model->topLevelLoops()[0];
  EXPECT_TRUE(b.graph.parallelizable(*loop));
}

TEST(Graph, UnknownSymbolicOffsetIsPending) {
  // A(I) vs A(I + K): K unknown -> assumed dependence, pending.
  auto b = buildGraph(
      "      SUBROUTINE S(A, N, K)\n"
      "      REAL A(2*N)\n"
      "      DO I = 1, N\n"
      "        A(I) = A(I + K)\n"
      "      ENDDO\n"
      "      END\n");
  auto* loop = b.model->topLevelLoops()[0];
  EXPECT_FALSE(b.graph.parallelizable(*loop));
  for (const auto* d : b.graph.parallelismInhibitors(*loop)) {
    EXPECT_EQ(d->mark, DepMark::Pending);
  }
}

TEST(Graph, ScalarSharedCreatesDeps) {
  auto b = buildGraph(
      "      SUBROUTINE S(A, N, ACC)\n"
      "      REAL A(N)\n"
      "      ACC = 0.0\n"
      "      DO I = 1, N\n"
      "        ACC = ACC + A(I)\n"
      "      ENDDO\n"
      "      END\n");
  auto* loop = b.model->topLevelLoops()[0];
  EXPECT_FALSE(b.graph.parallelizable(*loop));
  EXPECT_GE(countDeps(b.graph, DepType::True, true), 1);
  EXPECT_GE(countDeps(b.graph, DepType::Anti, true), 1);
  EXPECT_GE(countDeps(b.graph, DepType::Output, true), 1);
}

TEST(Graph, PrivatizableScalarCreatesNoDeps) {
  auto b = buildGraph(
      "      SUBROUTINE S(A, N)\n"
      "      REAL A(N)\n"
      "      DO I = 1, N\n"
      "        T = A(I)*2.0\n"
      "        A(I) = T + 1.0\n"
      "      ENDDO\n"
      "      END\n");
  auto* loop = b.model->topLevelLoops()[0];
  EXPECT_TRUE(b.graph.parallelizable(*loop));
}

TEST(Graph, AblationNoPrivatizationAddsDeps) {
  AnalysisContext ctx;
  ctx.usePrivatization = false;
  auto b = buildGraph(
      "      SUBROUTINE S(A, N)\n"
      "      REAL A(N)\n"
      "      DO I = 1, N\n"
      "        T = A(I)*2.0\n"
      "        A(I) = T + 1.0\n"
      "      ENDDO\n"
      "      END\n",
      ctx);
  auto* loop = b.model->topLevelLoops()[0];
  EXPECT_FALSE(b.graph.parallelizable(*loop));
}

TEST(Graph, ClassificationOverrideRestoresParallelism) {
  // Force-share the temp, then force-private it via override.
  const char* src =
      "      SUBROUTINE S(A, N, T)\n"
      "      REAL A(N)\n"
      "      DO I = 1, N\n"
      "        T = A(I)*2.0\n"
      "        A(I) = T + 1.0\n"
      "      ENDDO\n"
      "      END\n";
  // T is a parameter -> live at exit -> PrivateNeedsLastValue... the
  // classification override is what PED's variable editing exercises:
  auto plain = buildGraph(src);
  auto* loop0 = plain.model->topLevelLoops()[0];
  // Conservative classification (parameter, live at exit) still allows
  // privatization with last value; the loop should be parallelizable.
  EXPECT_TRUE(plain.graph.parallelizable(*loop0));

  AnalysisContext ctx;
  ps::DiagnosticEngine diags;
  auto prog = fortran::parseSource(src, diags);
  ir::ProcedureModel model(*prog->units[0]);
  auto* loop = model.topLevelLoops()[0];
  ctx.classificationOverrides[loop->stmt->id]["T"] = false;  // force shared
  auto g = DependenceGraph::build(model, ctx);
  EXPECT_FALSE(g.parallelizable(*loop));
}

TEST(Graph, ControlDepsRecorded) {
  auto b = buildGraph(
      "      SUBROUTINE S(A, N)\n"
      "      REAL A(N)\n"
      "      DO I = 1, N\n"
      "        IF (A(I) .GT. 0.0) THEN\n"
      "          A(I) = 0.0\n"
      "        ENDIF\n"
      "      ENDDO\n"
      "      END\n");
  EXPECT_GE(countDeps(b.graph, DepType::Control, false), 1);
}

// ---------------------------------------------------------------------------
// The paper's code fragments
// ---------------------------------------------------------------------------

// pueblo3d (§3.3): UF(I+MCN) vs UF(I,M) — no dependence given the assertion
// MCN > IENDV(IR) - ISTRT(IR).
const char* kPueblo =
    "      SUBROUTINE PUEBLO(UF, ISTRT, IENDV, MCN, IR, M, N)\n"
    "      REAL UF(10000, 5)\n"
    "      INTEGER ISTRT(N), IENDV(N)\n"
    "      DO I = ISTRT(IR), IENDV(IR)\n"
    "        UF(I, M) = UF(I + MCN, 3)*2.0\n"
    "      ENDDO\n"
    "      END\n";

TEST(Paper, PuebloAssumedWithoutAssertion) {
  auto b = buildGraph(kPueblo);
  auto* loop = b.model->topLevelLoops()[0];
  EXPECT_FALSE(b.graph.parallelizable(*loop));
  for (const auto* d : b.graph.parallelismInhibitors(*loop)) {
    EXPECT_EQ(d->mark, DepMark::Pending);  // deletable by the user
  }
}

TEST(Paper, PuebloParallelWithRelationFact) {
  AnalysisContext ctx;
  // MCN - (@IENDV(IR) - @ISTRT(IR)) > 0 — the assertion from the paper,
  // in the linearizer's opaque namespace.
  LinearExpr f;
  f.coef["MCN"] = 1;
  f.coef["@IENDV(IR)"] = -1;
  f.coef["@ISTRT(IR)"] = 1;
  ctx.facts.push_back({f, /*strict=*/true});
  auto b = buildGraph(kPueblo, ctx);
  auto* loop = b.model->topLevelLoops()[0];
  EXPECT_TRUE(b.graph.parallelizable(*loop))
      << "inhibitors: " << b.graph.parallelismInhibitors(*loop).size();
}

// dpmin (§4.3): F(IT(N)+k) scatter updates through index arrays.
const char* kDpmin =
    "      SUBROUTINE DPMIN(F, IT, JT, KT, NBA, DT1, DT2)\n"
    "      REAL F(100000)\n"
    "      INTEGER IT(NBA), JT(NBA), KT(NBA)\n"
    "      DO 300 N = 1, NBA\n"
    "        I3 = IT(N)\n"
    "        J3 = JT(N)\n"
    "        F(I3 + 1) = F(I3 + 1) - DT1\n"
    "        F(I3 + 2) = F(I3 + 2) - DT2\n"
    "        F(J3 + 1) = F(J3 + 1) - DT1\n"
    "  300 CONTINUE\n"
    "      END\n";

TEST(Paper, DpminAssumedWithoutAssertions) {
  auto b = buildGraph(kDpmin);
  auto* loop = b.model->topLevelLoops()[0];
  EXPECT_FALSE(b.graph.parallelizable(*loop));
}

TEST(Paper, DpminSameIterationAccessesCancel) {
  // Within one iteration, F(I3+1) vs F(I3+2) touch different elements:
  // there must be no loop-independent dependence between refs based on the
  // SAME index value with different offsets. (Cross-base pairs like
  // F(I3+1) vs F(J3+1) legitimately stay pending without assertions.)
  auto b = buildGraph(kDpmin);
  auto printed = [](const fortran::Expr& e) {
    return fortran::printExpr(e);
  };
  for (const auto& d : b.graph.all()) {
    if (d.type == DepType::Control || d.loopCarried()) continue;
    if (d.variable != "F") continue;
    ASSERT_NE(d.srcRef, nullptr);
    ASSERT_NE(d.dstRef, nullptr);
    std::string s = printed(*d.srcRef->args[0]);
    std::string t = printed(*d.dstRef->args[0]);
    bool bothI3 = s.find("I3") != std::string::npos &&
                  t.find("I3") != std::string::npos;
    if (bothI3) {
      // Same base in the same iteration: only identical offsets may
      // depend.
      EXPECT_EQ(s, t) << "spurious loop-independent dep " << s << " vs "
                      << t;
    }
  }
}

TEST(Paper, DpminParallelWithStridedAndSeparatedAssertions) {
  AnalysisContext ctx;
  ctx.indexFacts.strided["IT"] = 3;
  ctx.indexFacts.strided["JT"] = 3;
  ctx.indexFacts.separated[{"IT", "JT"}] = 3;
  auto b = buildGraph(kDpmin, ctx);
  auto* loop = b.model->topLevelLoops()[0];
  EXPECT_TRUE(b.graph.parallelizable(*loop))
      << "inhibitors: " << b.graph.parallelismInhibitors(*loop).size();
}

TEST(Paper, DpminPermutationKillsSameOffsetDeps) {
  AnalysisContext ctx;
  ctx.indexFacts.permutation.insert("IT");
  ctx.indexFacts.permutation.insert("JT");
  auto b = buildGraph(kDpmin, ctx);
  // F(I3+1) self-dependence across iterations must be gone; F(I3+1) vs
  // F(I3+2) across iterations remains pending.
  bool sameOffsetCarried = false;
  for (const auto& d : b.graph.all()) {
    if (d.variable != "F" || !d.loopCarried()) continue;
    if (d.srcRef && d.dstRef &&
        d.srcRef->args[0]->structurallyEquals(*d.dstRef->args[0])) {
      sameOffsetCarried = true;
    }
  }
  EXPECT_FALSE(sameOffsetCarried);
}

// arc3d (§4.3): symbolic relation JM = JMAX - 1 enables precise testing.
// The cross-iteration pattern WR1(JMAX, K) written, WR1(JM, K-1) read:
// with the relation, the first dimensions can never be equal (ZIV diff 1),
// so there is no dependence at all; without it, a carried dependence must
// be assumed.
const char* kArc3d =
    "      SUBROUTINE FILT(WR1, JMAX, KM)\n"
    "      REAL WR1(100, 100)\n"
    "      JM = JMAX - 1\n"
    "      DO K = 2, KM\n"
    "        WR1(JMAX, K) = WR1(JM, K - 1)\n"
    "      ENDDO\n"
    "      END\n";

TEST(Paper, Arc3dRelationSharpensAnalysis) {
  auto b = buildGraph(kArc3d);
  auto* loop = b.model->topLevelLoops()[0];
  EXPECT_TRUE(b.graph.parallelizable(*loop));
  EXPECT_EQ(countDeps(b.graph, DepType::True, true), 0);
}

TEST(Paper, Arc3dWithoutSymbolicInfoIsConservative) {
  AnalysisContext ctx;
  ctx.useSymbolicInfo = false;
  auto b = buildGraph(kArc3d, ctx);
  auto* loop = b.model->topLevelLoops()[0];
  // JM and JMAX unrelated: a carried dependence must be assumed (pending).
  EXPECT_FALSE(b.graph.parallelizable(*loop));
  for (const auto* d : b.graph.parallelismInhibitors(*loop)) {
    EXPECT_EQ(d->mark, DepMark::Pending);
  }
}

// ---------------------------------------------------------------------------
// Interprocedural effects
// ---------------------------------------------------------------------------

/// A hand-written oracle for testing the section plumbing: callee SWEEP(A,J)
/// writes exactly column J of A.
class ColumnOracle : public SideEffectOracle {
 public:
  [[nodiscard]] bool knowsCallee(const std::string& name) const override {
    return name == "SWEEP";
  }
  [[nodiscard]] std::vector<CallEffect> effectsOfCall(
      const fortran::Stmt& stmt, const std::string&) const override {
    // CALL SWEEP(A, J, N): writes A(1:N, J).
    std::vector<CallEffect> out;
    CallEffect e;
    e.var = stmt.args[0]->name;
    e.isArray = true;
    e.mayWrite = true;
    e.kills = true;
    Section s;
    s.array = e.var;
    SectionDim d1;
    d1.lo = fortran::makeIntConst(1);
    d1.hi = stmt.args[2]->clone();
    s.dims.emplace_back(std::move(d1));
    SectionDim d2;
    d2.lo = stmt.args[1]->clone();
    d2.hi = stmt.args[1]->clone();
    s.dims.emplace_back(std::move(d2));
    e.section = std::move(s);
    out.push_back(std::move(e));
    return out;
  }
};

TEST(Interproc, SectionsProveCallLoopParallel) {
  const char* src =
      "      SUBROUTINE DRIVER(A, N, M)\n"
      "      REAL A(N, M)\n"
      "      DO J = 1, M\n"
      "        CALL SWEEP(A, J, N)\n"
      "      ENDDO\n"
      "      END\n";
  // Without the oracle: assumed call-call output dependence.
  auto base = buildGraph(src);
  auto* loop0 = base.model->topLevelLoops()[0];
  EXPECT_FALSE(base.graph.parallelizable(*loop0));

  // With section summaries: each iteration writes a distinct column.
  ColumnOracle oracle;
  AnalysisContext ctx;
  ctx.oracle = &oracle;
  auto b = buildGraph(src, ctx);
  auto* loop = b.model->topLevelLoops()[0];
  EXPECT_TRUE(b.graph.parallelizable(*loop))
      << "inhibitors: " << b.graph.parallelismInhibitors(*loop).size();
}

TEST(Interproc, OverlappingSectionsStillDependent) {
  const char* src =
      "      SUBROUTINE DRIVER(A, N, M)\n"
      "      REAL A(N, M)\n"
      "      DO J = 1, M\n"
      "        CALL SWEEP(A, 1, N)\n"
      "      ENDDO\n"
      "      END\n";
  ColumnOracle oracle;
  AnalysisContext ctx;
  ctx.oracle = &oracle;
  auto b = buildGraph(src, ctx);
  auto* loop = b.model->topLevelLoops()[0];
  // Every iteration writes column 1: output dependence remains.
  EXPECT_FALSE(b.graph.parallelizable(*loop));
}

// ---------------------------------------------------------------------------
// Summary / stats
// ---------------------------------------------------------------------------

TEST(Graph, SummaryCountsConsistent) {
  auto b = buildGraph(
      "      SUBROUTINE S(A, N, K)\n"
      "      REAL A(N)\n"
      "      DO I = 2, N\n"
      "        A(I) = A(I - 1) + A(I + K)\n"
      "      ENDDO\n"
      "      END\n");
  auto s = b.graph.summary();
  EXPECT_EQ(s.totalDeps, static_cast<int>(b.graph.all().size()));
  EXPECT_GE(s.provenDeps, 1);   // A(I-1) flow dep
  EXPECT_GE(s.pendingDeps, 1);  // A(I+K) unknown
}

TEST(Graph, CheapTierStatsPopulated) {
  auto b = buildGraph(
      "      SUBROUTINE S(A, N)\n"
      "      REAL A(N)\n"
      "      DO I = 2, N\n"
      "        A(I) = A(I - 1)\n"
      "      ENDDO\n"
      "      END\n");
  EXPECT_GE(b.graph.stats().strongSiv, 1);
}

TEST(Graph, AblationFmOnlySkipsCheapTiers) {
  AnalysisContext ctx;
  ctx.cheapTestsFirst = false;
  auto b = buildGraph(
      "      SUBROUTINE S(A, N)\n"
      "      REAL A(N)\n"
      "      DO I = 2, N\n"
      "        A(I) = A(I - 1)\n"
      "      ENDDO\n"
      "      END\n",
      ctx);
  EXPECT_EQ(b.graph.stats().strongSiv, 0);
  EXPECT_GE(b.graph.stats().fmRuns, 1);
}

// ---------------------------------------------------------------------------
// Direction refinement (refineInner) correctness
// ---------------------------------------------------------------------------

// The strong SIV tier skips its trip-count check when a loop bound is
// symbolic, so A(I+5) vs A(I) in DO I = 1, N is reported as an exact
// distance-5 dependence. A user fact N <= 3 lets the constrained
// Fourier–Motzkin re-tests of refineInner disprove every inner direction
// (Lt, Eq and Gt all infeasible: the distance exceeds the trip count).
// count == 0 used to fall into the conservative '*' branch, keeping a
// dependence that provably does not exist; it must retract the edge.
TEST(Graph, RefineInnerAllDirectionsDisprovedRetractsEdge) {
  const char* src =
      "      SUBROUTINE S(A, N)\n"
      "      REAL A(N)\n"
      "      DO I = 1, N\n"
      "        DO J = 1, 10\n"
      "          A(I + 5) = A(I)\n"
      "        ENDDO\n"
      "      ENDDO\n"
      "      END\n";

  // Note: the J-carried output self-dependence of A(I+5) is real (J never
  // appears in the subscript) and must survive; only the I-carried flow
  // dependence A(I+5) -> A(I) is disproved by the fact.
  auto countFlow = [](const DependenceGraph& g) {
    int n = 0;
    for (const auto& d : g.all()) {
      if (d.variable == "A" && d.type == DepType::True) ++n;
    }
    return n;
  };

  // Without the fact the flow dependence survives (N could be huge).
  auto plain = buildGraph(src);
  EXPECT_GE(countFlow(plain.graph), 1);
  EXPECT_FALSE(plain.graph.parallelizable(*plain.model->topLevelLoops()[0]));

  AnalysisContext ctx;
  ctx.facts.push_back({lin({{"N", -1}}, 3), /*strict=*/false});  // N <= 3
  auto b = buildGraph(src, ctx);
  EXPECT_EQ(countFlow(b.graph), 0)
      << "refineInner disproved every inner direction but the edge survived";
  auto* outer = b.model->topLevelLoops()[0];
  EXPECT_TRUE(b.graph.parallelizable(*outer));
}

// ---------------------------------------------------------------------------
// Memoized testing and incremental update
// ---------------------------------------------------------------------------

const char* kRepeatedPatterns =
    "      SUBROUTINE S(A, B, N)\n"
    "      REAL A(N, N), B(N, N)\n"
    "      DO I = 2, N\n"
    "        DO J = 2, N\n"
    "          A(I, J) = A(I, J - 1)\n"
    "          B(I, J) = B(I, J - 1)\n"
    "        ENDDO\n"
    "      ENDDO\n"
    "      END\n";

// Structurally identical subscript pairs (A and B have the same shape)
// share memo entries even within one cold build.
TEST(Graph, MemoHitsOnRepeatedPatternsWithinOneBuild) {
  auto b = buildGraph(kRepeatedPatterns);
  EXPECT_GT(b.graph.stats().memoHits, 0);
  EXPECT_EQ(b.graph.stats().testsRun(),
            b.graph.stats().memoMisses);
}

// A session-shared memo answers a rebuild's tests from cache, and the
// resulting graph is identical to the cold build's.
TEST(Graph, WarmMemoRebuildMatchesColdBuild) {
  AnalysisContext ctx;
  ctx.memo = std::make_shared<DepMemo>();
  auto cold = buildGraph(kRepeatedPatterns, ctx);
  auto warm = buildGraph(kRepeatedPatterns, ctx);
  EXPECT_EQ(warm.graph.stats().memoMisses, 0);
  EXPECT_GT(warm.graph.stats().memoHits, 0);
  ASSERT_EQ(warm.graph.all().size(), cold.graph.all().size());
  for (std::size_t i = 0; i < cold.graph.all().size(); ++i) {
    const Dependence& c = cold.graph.all()[i];
    const Dependence& w = warm.graph.all()[i];
    EXPECT_EQ(c.type, w.type);
    EXPECT_EQ(c.variable, w.variable);
    EXPECT_EQ(c.level, w.level);
    EXPECT_EQ(c.vector.str(), w.vector.str());
    EXPECT_EQ(c.mark, w.mark);
  }
}

// Disabling memoization must not change results, only the counters.
TEST(Graph, MemoDisabledRunsEveryTest) {
  AnalysisContext ctx;
  ctx.useMemo = false;
  auto b = buildGraph(kRepeatedPatterns, ctx);
  EXPECT_EQ(b.graph.stats().memoHits, 0);
  EXPECT_EQ(b.graph.stats().memoMisses, 0);
  EXPECT_EQ(b.graph.stats().testsRun(), b.graph.stats().testsRequested);
  auto memoized = buildGraph(kRepeatedPatterns);
  EXPECT_EQ(b.graph.all().size(), memoized.graph.all().size());
}

// update() against an unchanged procedure splices every reference pair and
// issues zero dependence tests.
TEST(Graph, UpdateUnchangedSplicesEveryPair) {
  auto b = buildGraph(kRepeatedPatterns);
  AnalysisContext ctx;
  DependenceGraph g2 = DependenceGraph::update(*b.model, ctx, b.graph);
  EXPECT_EQ(g2.stats().pairsTested, 0);
  EXPECT_GT(g2.stats().pairsSpliced, 0);
  EXPECT_EQ(g2.stats().testsRequested, 0);
  EXPECT_EQ(g2.stats().edgesRebuilt, 0);
  ASSERT_EQ(g2.all().size(), b.graph.all().size());
  for (std::size_t i = 0; i < g2.all().size(); ++i) {
    const Dependence& a = b.graph.all()[i];
    const Dependence& c = g2.all()[i];
    EXPECT_EQ(a.type, c.type);
    EXPECT_EQ(a.variable, c.variable);
    EXPECT_EQ(a.srcStmt, c.srcStmt);
    EXPECT_EQ(a.dstStmt, c.dstStmt);
    EXPECT_EQ(a.level, c.level);
    EXPECT_EQ(a.vector.str(), c.vector.str());
  }
}

// ---------------------------------------------------------------------------
// Bounded analysis: budget exhaustion must coarsen answers (degraded,
// conservative), never fabricate a disproof.
// ---------------------------------------------------------------------------

TEST(FM, EliminationBudgetExhaustionIsConservative) {
  // x >= 5 and x <= 3 is infeasible, but proving it needs one elimination.
  // With a zero elimination budget the engine must give up (degraded) and
  // report "feasible" — the conservative answer — not a wrong disproof.
  std::vector<Constraint> cs = {Constraint::ge0(lin({{"x", 1}}, -5)),
                                Constraint::ge0(lin({{"x", -1}}, 3))};
  FourierMotzkin full(cs);
  EXPECT_TRUE(full.infeasible());
  EXPECT_FALSE(full.degraded());

  FmBudget starved;
  starved.maxEliminations = 0;
  FourierMotzkin fm(cs, starved);
  EXPECT_FALSE(fm.infeasible());
  EXPECT_TRUE(fm.degraded());
}

TEST(FM, ConstraintBlowupDegradesInsteadOfAnswering) {
  // Same infeasible system, but cap the constraint set below what the
  // elimination produces: the old silent kMaxConstraints bailout is now a
  // reported degradation.
  std::vector<Constraint> cs = {Constraint::ge0(lin({{"x", 1}}, -5)),
                                Constraint::ge0(lin({{"x", -1}}, 3))};
  FmBudget starved;
  starved.maxConstraints = 0;
  FourierMotzkin fm(cs, starved);
  EXPECT_FALSE(fm.infeasible());
  EXPECT_TRUE(fm.degraded());
}

// Constraint explosion at graph level: a starved budget may only *add*
// (degraded) edges relative to the default budget — disproofs disappear,
// they are never invented.
TEST(Graph, StarvedBudgetYieldsConservativeSuperset) {
  const char* src =
      "      SUBROUTINE S(A, N)\n"
      "      REAL A(N)\n"
      "      DO I = 1, 10\n"
      "        DO J = 1, 10\n"
      "          A(I + J) = A(I + J + 50)\n"
      "        ENDDO\n"
      "      ENDDO\n"
      "      END\n";
  auto base = buildGraph(src);

  AnalysisContext starvedCtx;
  starvedCtx.budget.fmMaxConstraints = 1;
  starvedCtx.budget.fmMaxEliminations = 0;
  starvedCtx.budget.maxSubscriptNodes = 1;
  starvedCtx.budget.maxSymbolicRelations = 0;
  auto starved = buildGraph(src, starvedCtx);

  auto key = [](const Dependence& d) {
    return std::make_tuple(d.srcStmt, d.dstStmt, d.type, d.variable, d.level);
  };
  std::set<std::tuple<fortran::StmtId, fortran::StmtId, DepType, std::string,
                      int>>
      baseKeys, starvedKeys;
  for (const auto& d : base.graph.all()) baseKeys.insert(key(d));
  for (const auto& d : starved.graph.all()) starvedKeys.insert(key(d));

  // Every edge the full analysis kept survives starvation (conservative).
  for (const auto& k : baseKeys) {
    EXPECT_TRUE(starvedKeys.count(k))
        << "starved analysis lost an edge on " << std::get<3>(k);
  }
  // Starvation added edges (the FM disproof of the distance-50 pair is
  // gone), and every added edge is flagged degraded.
  EXPECT_GT(starvedKeys.size(), baseKeys.size());
  for (const auto& d : starved.graph.all()) {
    if (!baseKeys.count(key(d))) {
      EXPECT_TRUE(d.degraded)
          << "new edge on " << d.variable << " not flagged degraded";
    }
  }
  // The exhaustion is visible in the stats and the summary.
  const TestStats& st = starved.graph.stats();
  EXPECT_GT(st.linearizeDegraded + st.fmDegraded, 0);
  EXPECT_GT(st.degradedAnswers, 0);
  EXPECT_GT(starved.graph.summary().degradedDeps, 0);
  EXPECT_EQ(base.graph.summary().degradedDeps, 0);
}

// A changed fact base must defeat the splice (ctx signature mismatch) and
// produce the sharper graph.
TEST(Graph, UpdateWithNewFactsRetests) {
  const char* src =
      "      SUBROUTINE S(A, N)\n"
      "      REAL A(N)\n"
      "      DO I = 1, N\n"
      "        DO J = 1, 10\n"
      "          A(I + 5) = A(I)\n"
      "        ENDDO\n"
      "      ENDDO\n"
      "      END\n";
  auto b = buildGraph(src);
  AnalysisContext sharper;
  sharper.facts.push_back({lin({{"N", -1}}, 3), /*strict=*/false});
  DependenceGraph g2 = DependenceGraph::update(*b.model, sharper, b.graph);
  EXPECT_EQ(g2.stats().pairsSpliced, 0);
  int flow = 0;
  for (const auto& d : g2.all()) {
    if (d.variable == "A" && d.type == DepType::True) ++flow;
  }
  EXPECT_EQ(flow, 0);
}

}  // namespace
}  // namespace ps::dep
